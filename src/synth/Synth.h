//===- Synth.h - Synthetic binary generator -------------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates synthetic machine-code programs with exact ground truth — the
/// replacement for the paper's 160-binary corpus (§6.2). Programs are
/// assembled from idiom templates drawn from the paper's §2 catalog:
///
///   list traversal (recursive types, §2.3), struct getters/setters
///   (polymorphic accessors, §2.2/4.3), malloc wrappers (polymorphic
///   allocation), memcpy users, file-descriptor pipelines (semantic tags),
///   stack-slot reuse (§2.1), semi-syntactic constants (§2.1), fortuitous
///   return-value reuse (Figure 1), false register parameters (§2.5),
///   xor hashing (type-unsafe §2.6), globals, offset pointers (§2.4),
///   plain arithmetic.
///
/// Cluster generation mirrors Figure 10: programs of one cluster share a
/// common statically-linked "utility" code base (as coreutils does), which
/// correlates their results.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SYNTH_SYNTH_H
#define RETYPD_SYNTH_SYNTH_H

#include "eval/GroundTruth.h"
#include "mir/MIR.h"

#include <memory>
#include <random>
#include <string>
#include <vector>

namespace retypd {

/// Knobs for one generated program.
struct SynthOptions {
  uint64_t Seed = 1;
  unsigned TargetInstructions = 500;
  bool IncludeTypeUnsafe = true;     ///< xor hashing etc. (§2.6)
  bool IncludeFalseRegParams = true; ///< push-ecx idiom (§2.5)
};

/// One generated program plus its declared types.
struct SynthProgram {
  std::string Name;
  Module M;
  std::shared_ptr<GroundTruth> Truth;
  std::string AsmText; ///< the program source, for inspection
};

/// The generator.
class SynthGenerator {
public:
  /// Generates one program of roughly TargetInstructions instructions.
  SynthProgram generate(const std::string &Name, const SynthOptions &Opts);

  /// Generates a cluster of \p Count programs sharing a common utility
  /// base, each of roughly \p AvgInstructions instructions.
  std::vector<SynthProgram> generateCluster(const std::string &ClusterName,
                                            unsigned Count,
                                            unsigned AvgInstructions,
                                            uint64_t Seed);
};

} // namespace retypd

#endif // RETYPD_SYNTH_SYNTH_H
