//===- ConcreteInterpTest.cpp - Concrete evaluator tests ---------------------===//

#include "absint/ConcreteInterp.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

Module parseOk(const std::string &Text) {
  AsmParser P;
  auto M = P.parse(Text);
  if (!M) {
    ADD_FAILURE() << P.error();
    return Module();
  }
  return *M;
}

} // namespace

TEST(ConcreteInterp, ArithmeticAndHalt) {
  Module M = parseOk(R"(
fn main:
  mov eax, 6
  mov ebx, 7
  add eax, ebx
  halt
)");
  M.EntryFunc = 0;
  ConcreteInterp CI(M);
  ASSERT_TRUE(CI.run()) << CI.error();
  EXPECT_EQ(CI.reg(Reg::Eax), 13u);
}

TEST(ConcreteInterp, LoopComputesSum) {
  Module M = parseOk(R"(
fn main:
  mov eax, 0
  mov ecx, 5
loop:
  add eax, ecx
  sub ecx, 1
  cmp ecx, 0
  jnz loop
  halt
)");
  M.EntryFunc = 0;
  ConcreteInterp CI(M);
  ASSERT_TRUE(CI.run()) << CI.error();
  EXPECT_EQ(CI.reg(Reg::Eax), 15u);
}

TEST(ConcreteInterp, CallAndReturn) {
  Module M = parseOk(R"(
fn main:
  push 5
  push 9
  call addxy
  add esp, 8
  halt
fn addxy:
  load eax, [esp+4]
  load ebx, [esp+8]
  add eax, ebx
  ret
)");
  M.EntryFunc = 0;
  ConcreteInterp CI(M);
  ASSERT_TRUE(CI.run()) << CI.error();
  EXPECT_EQ(CI.reg(Reg::Eax), 14u);
}

TEST(ConcreteInterp, MallocModelAndHeap) {
  Module M = parseOk(R"(
extern malloc
fn main:
  push 8
  call malloc
  add esp, 4
  store [eax], eax
  load ebx, [eax]
  halt
)");
  M.EntryFunc = *M.findFunction("main");
  ConcreteInterp CI(M);
  ASSERT_TRUE(CI.run()) << CI.error();
  EXPECT_EQ(CI.reg(Reg::Ebx), CI.reg(Reg::Eax));
}

TEST(ConcreteInterp, GlobalsReadWrite) {
  Module M = parseOk(R"(
global counter, 4
fn main:
  mov eax, 41
  store [@counter], eax
  load ebx, [@counter]
  add ebx, 1
  store [@counter], ebx
  load ecx, [@counter]
  halt
)");
  M.EntryFunc = 0;
  ConcreteInterp CI(M);
  ASSERT_TRUE(CI.run()) << CI.error();
  EXPECT_EQ(CI.reg(Reg::Ecx), 42u);
}

TEST(ConcreteInterp, LinkedListTraversal) {
  // Build a 3-cell list in memory via malloc, then walk it — the runtime
  // twin of close_last.
  Module M = parseOk(R"(
extern malloc
fn main:
  ; cell c (last): next = 0, payload = 30
  push 8
  call malloc
  add esp, 4
  store [eax], 0
  store [eax+4], 30
  mov esi, eax
  ; cell b: next = c, payload = 20
  push 8
  call malloc
  add esp, 4
  store [eax], esi
  store [eax+4], 20
  mov esi, eax
  ; cell a: next = b, payload = 10
  push 8
  call malloc
  add esp, 4
  store [eax], esi
  store [eax+4], 10
  mov edx, eax
  ; walk to the last cell
check:
  load ebx, [edx]
  test ebx, ebx
  jz done
  mov edx, ebx
  jmp check
done:
  load eax, [edx+4]
  halt
)");
  M.EntryFunc = *M.findFunction("main");
  ConcreteInterp CI(M);
  ASSERT_TRUE(CI.run()) << CI.error();
  EXPECT_EQ(CI.reg(Reg::Eax), 30u);
}

TEST(ConcreteInterp, ByteSizedAccess) {
  Module M = parseOk(R"(
global buf, 4
fn main:
  mov eax, 0x11223344
  store [@buf], eax
  load1 ebx, [@buf+2]
  halt
)");
  M.EntryFunc = 0;
  ConcreteInterp CI(M);
  ASSERT_TRUE(CI.run()) << CI.error();
  EXPECT_EQ(CI.reg(Reg::Ebx), 0x22u);
}

TEST(ConcreteInterp, BudgetStopsRunaway) {
  Module M = parseOk(R"(
fn main:
spin:
  jmp spin
)");
  M.EntryFunc = 0;
  ConcreteInterp CI(M);
  EXPECT_FALSE(CI.run(1000));
  EXPECT_NE(CI.error().find("budget"), std::string::npos);
}

TEST(ConcreteInterp, CustomExternalHandler) {
  Module M = parseOk(R"(
extern magic
fn main:
  call magic
  halt
)");
  M.EntryFunc = *M.findFunction("main");
  ConcreteInterp CI(M);
  CI.setExternal("magic", [](ConcreteInterp &) { return 1234u; });
  ASSERT_TRUE(CI.run()) << CI.error();
  EXPECT_EQ(CI.reg(Reg::Eax), 1234u);
}
