//===- ConstraintGenTest.cpp - Appendix A constraint generation tests --------===//

#include "absint/ConstraintGen.h"
#include "analysis/InterfaceRecovery.h"
#include "core/ConstraintGraph.h"
#include "core/ConstraintParser.h"
#include "core/SchemeCodec.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class GenTest : public ::testing::Test {
protected:
  GenTest() : Lat(makeDefaultLattice()), Parser(Syms, Lat) {}

  Module parseModule(const std::string &Text) {
    AsmParser P;
    auto M = P.parse(Text);
    if (!M) {
      ADD_FAILURE() << P.error();
      return Module();
    }
    recoverInterfaces(*M);
    return *M;
  }

  GenResult genFor(Module &M, const std::string &Name) {
    ConstraintGenerator Gen(Syms, Lat, M);
    auto Id = M.findFunction(Name);
    EXPECT_TRUE(Id.has_value());
    return Gen.generate(*Id, {}, {});
  }

  /// Does the generated set entail Lhs <= Rhs? The queried DTVs are
  /// declared (var L / var R) so their nodes exist in the graph even when
  /// the constraint set only mentions aliases of them.
  bool derives(const ConstraintSet &C, const std::string &Lhs,
               const std::string &Rhs) {
    auto L = Parser.parseDtv(Lhs);
    auto R = Parser.parseDtv(Rhs);
    EXPECT_TRUE(L && R) << Parser.error();
    if (!L || !R)
      return false;
    ConstraintSet C2 = C;
    C2.addVar(*L);
    C2.addVar(*R);
    ConstraintGraph G(C2);
    G.saturate();
    GraphNodeId Ln = G.lookup(*L, Variance::Covariant);
    GraphNodeId Rn = G.lookup(*R, Variance::Covariant);
    if (Ln == ConstraintGraph::NoNode || Rn == ConstraintGraph::NoNode)
      return false;
    for (GraphNodeId N : G.oneReachableFrom(Ln))
      if (N == Rn)
        return true;
    return false;
  }

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
};

} // namespace

TEST_F(GenTest, ParameterFlowsToReturn) {
  Module M = parseModule(R"(
fn id:
  load eax, [esp+4]
  ret
)");
  GenResult R = genFor(M, "id");
  EXPECT_EQ(R.NumParams, 1u);
  EXPECT_TRUE(derives(R.C, "id.in0", "id.out")) << R.C.str(Syms, Lat);
}

TEST_F(GenTest, PointerFieldLoad) {
  // *(p+4) read as a 4-byte field.
  Module M = parseModule(R"(
fn get4:
  load edx, [esp+4]
  load eax, [edx+4]
  ret
)");
  GenResult R = genFor(M, "get4");
  EXPECT_TRUE(derives(R.C, "get4.in0.load.s32@4", "get4.out"))
      << R.C.str(Syms, Lat);
}

TEST_F(GenTest, PointerFieldStore) {
  Module M = parseModule(R"(
fn set0:
  load edx, [esp+4]
  load eax, [esp+8]
  store [edx], eax
  ret
)");
  GenResult R = genFor(M, "set0");
  EXPECT_TRUE(derives(R.C, "set0.in1", "set0.in0.store.s32@0"))
      << R.C.str(Syms, Lat);
}

TEST_F(GenTest, OffsetTranslationTracksFields) {
  // add edx, 8 then load [edx+4]: the access is at offset 12 (A.2).
  Module M = parseModule(R"(
fn f:
  load edx, [esp+4]
  add edx, 8
  load eax, [edx+4]
  ret
)");
  GenResult R = genFor(M, "f");
  EXPECT_TRUE(derives(R.C, "f.in0.load.s32@12", "f.out"))
      << R.C.str(Syms, Lat);
}

TEST_F(GenTest, SizedAccessesKeepWidths) {
  Module M = parseModule(R"(
fn f:
  load edx, [esp+4]
  load1 eax, [edx+2]
  ret
)");
  GenResult R = genFor(M, "f");
  EXPECT_TRUE(derives(R.C, "f.in0.load.s8@2", "f.out"))
      << R.C.str(Syms, Lat);
}

TEST_F(GenTest, StackSlotReuseDoesNotConflate) {
  // Two lifetimes in one slot (§2.1): writes at different sites produce
  // different variables; the second load must not see the first store.
  Module M = parseModule(R"(
fn f:
  load eax, [esp+4]
  store [esp-4], eax
  load ebx, [esp-4]
  load eax, [esp+8]
  store [esp-4], eax
  load ecx, [esp-4]
  store [esp-8], ecx
  ret
)");
  GenResult R = genFor(M, "f");
  std::string Text = R.C.str(Syms, Lat);
  // in0 flows to the first reload's consumer chain; in1 to the second.
  EXPECT_TRUE(derives(R.C, "f.in0", "f!stk-4@1"));
  EXPECT_TRUE(derives(R.C, "f.in1", "f!stk-4@4"));
  EXPECT_FALSE(derives(R.C, "f.in0", "f!stk-4@4")) << Text;
  EXPECT_FALSE(derives(R.C, "f.in1", "f!stk-4@1")) << Text;
}

TEST_F(GenTest, XorZeroIdiomProducesNoFlow) {
  Module M = parseModule(R"(
fn f:
  xor eax, eax
  push eax
  call g
  add esp, 4
  ret
fn g:
  load eax, [esp+4]
  ret
)");
  recoverInterfaces(M);
  ConstraintGenerator Gen(Syms, Lat, M);
  GenResult R = Gen.generate(*M.findFunction("f"), {}, {});
  // eax's zeroed value flows into g's parameter but carries no constant
  // bound and no connection to any other value.
  EXPECT_FALSE(derives(R.C, "int", "f!g@2.in0"));
}

TEST_F(GenTest, CallsInstantiateSchemes) {
  Module M = parseModule(R"(
extern id32
fn caller:
  push 7
  call id32
  add esp, 4
  ret
)");
  // Build a little scheme for id32: forall F. F.in0 <= F.out.
  M.Funcs[*M.findFunction("id32")].NumStackParams = 1;
  M.Funcs[*M.findFunction("id32")].ReturnsValue = true;

  TypeScheme Scheme;
  Scheme.ProcVar = TypeVariable::var(Syms.intern("id32"));
  Scheme.Constraints.addSubtype(
      DerivedTypeVariable(Scheme.ProcVar, {Label::in(0)}),
      DerivedTypeVariable(Scheme.ProcVar, {Label::out()}));

  ConstraintGenerator Gen(Syms, Lat, M);
  std::unordered_map<uint32_t, TypeScheme> Schemes;
  Schemes[*M.findFunction("id32")] = Scheme;
  GenResult R = Gen.generate(*M.findFunction("caller"), Schemes, {});

  // The callsite instance links the (pushed) actual to caller.out through
  // the instantiated scheme.
  EXPECT_TRUE(derives(R.C, "caller!id32@1.in0", "caller.out"))
      << R.C.str(Syms, Lat);
}

TEST_F(GenTest, TwoCallsitesAreIndependent) {
  // Let-polymorphism (A.4): two malloc-like calls must not share variables.
  Module M = parseModule(R"(
extern alloc
fn f:
  push 8
  call alloc
  add esp, 4
  mov ebx, eax
  push 16
  call alloc
  add esp, 4
  mov ecx, eax
  ret
)");
  M.Funcs[*M.findFunction("alloc")].NumStackParams = 1;
  M.Funcs[*M.findFunction("alloc")].ReturnsValue = true;
  ConstraintGenerator Gen(Syms, Lat, M);
  GenResult R = Gen.generate(*M.findFunction("f"), {}, {});
  // The two callsite variables are distinct.
  EXPECT_FALSE(derives(R.C, "f!alloc@1.out", "f!alloc@5.out"));
  EXPECT_FALSE(derives(R.C, "f!alloc@5.out", "f!alloc@1.out"));
}

TEST_F(GenTest, SccCallsAreMonomorphic) {
  Module M = parseModule(R"(
fn even:
  load eax, [esp+4]
  push eax
  call odd
  add esp, 4
  ret
fn odd:
  load eax, [esp+4]
  push eax
  call even
  add esp, 4
  ret
)");
  ConstraintGenerator Gen(Syms, Lat, M);
  std::set<uint32_t> Scc{*M.findFunction("even"), *M.findFunction("odd")};
  GenResult R = Gen.generate(*M.findFunction("even"), {}, Scc);
  EXPECT_TRUE(R.Interesting.count(
      TypeVariable::var(Syms.intern("odd"))));
  EXPECT_TRUE(derives(R.C, "even.in0", "odd.in0")) << R.C.str(Syms, Lat);
}

TEST_F(GenTest, GlobalsAreSharedInterestingVariables) {
  Module M = parseModule(R"(
global counter, 4
fn f:
  load eax, [@counter]
  ret
)");
  GenResult R = genFor(M, "f");
  EXPECT_TRUE(R.Interesting.count(
      TypeVariable::var(Syms.intern("g!counter"))));
  EXPECT_TRUE(derives(R.C, "g!counter", "f.out")) << R.C.str(Syms, Lat);
}

TEST_F(GenTest, AddressOfGlobalMakesPointer) {
  Module M = parseModule(R"(
global cell, 4
fn f:
  mov eax, @cell
  store [eax], ebx
  ret
)");
  GenResult R = genFor(M, "f");
  // Stores through the pointer reach the global.
  EXPECT_TRUE(derives(R.C, "f!ebx@in", "g!cell")) << R.C.str(Syms, Lat);
}

TEST_F(GenTest, RegisterParamsGetInLabels) {
  Module M = parseModule(R"(
fn f:
  mov eax, ecx
  ret
)");
  GenResult R = genFor(M, "f");
  EXPECT_EQ(R.NumParams, 1u);
  EXPECT_TRUE(derives(R.C, "f.in0", "f.out")) << R.C.str(Syms, Lat);
}

TEST_F(GenTest, AddEmitsAddSubConstraint) {
  Module M = parseModule(R"(
fn f:
  load eax, [esp+4]
  load ebx, [esp+8]
  add eax, ebx
  ret
)");
  GenResult R = genFor(M, "f");
  EXPECT_EQ(R.C.addSubs().size(), 1u);
  EXPECT_FALSE(R.C.addSubs()[0].IsSub);
}

TEST_F(GenTest, BitTwiddlingBoundsResult) {
  Module M = parseModule(R"(
fn f:
  load eax, [esp+4]
  load ebx, [esp+8]
  and eax, ebx
  ret
)");
  GenResult R = genFor(M, "f");
  // The and-result value itself is bounded above by num32.
  EXPECT_TRUE(derives(R.C, "f!eax@2", "num32")) << R.C.str(Syms, Lat);
}

TEST_F(GenTest, PointerTagStealingIsIdentity) {
  // and eax, -4 keeps the pointer flowing (A.5.2).
  Module M = parseModule(R"(
fn f:
  load eax, [esp+4]
  and eax, -4
  load eax, [eax+0]
  ret
)");
  GenResult R = genFor(M, "f");
  EXPECT_TRUE(derives(R.C, "f.in0.load.s32@0", "f.out"))
      << R.C.str(Syms, Lat);
}

TEST_F(GenTest, CloseLastEndToEndConstraints) {
  // Figure 2, full circle: assembly -> constraints entail the paper's
  // derived facts.
  Module M = parseModule(R"(
extern close
fn close_last:
  load edx, [esp+4]
  jmp check
advance:
  mov edx, eax
check:
  load eax, [edx+0]
  test eax, eax
  jnz advance
  load eax, [edx+4]
  push eax
  call close
  add esp, 4
  ret
)");
  uint32_t CloseId = *M.findFunction("close");
  M.Funcs[CloseId].NumStackParams = 1;
  M.Funcs[CloseId].ReturnsValue = true;

  // close's summary: in0 <= #FileDescriptor /\ int; #SuccessZ \/ int <= out.
  TypeScheme CloseScheme;
  CloseScheme.ProcVar = TypeVariable::var(Syms.intern("close"));
  auto CloseDtv = [&](Label L) {
    return DerivedTypeVariable(CloseScheme.ProcVar, {L});
  };
  CloseScheme.Constraints.addSubtype(
      CloseDtv(Label::in(0)),
      DerivedTypeVariable(
          TypeVariable::constant(*Lat.lookup("#FileDescriptor"))));
  CloseScheme.Constraints.addSubtype(
      CloseDtv(Label::in(0)),
      DerivedTypeVariable(TypeVariable::constant(*Lat.lookup("int"))));
  CloseScheme.Constraints.addSubtype(
      DerivedTypeVariable(TypeVariable::constant(*Lat.lookup("#SuccessZ"))),
      CloseDtv(Label::out()));

  ConstraintGenerator Gen(Syms, Lat, M);
  std::unordered_map<uint32_t, TypeScheme> Schemes;
  Schemes[CloseId] = CloseScheme;
  GenResult R = Gen.generate(*M.findFunction("close_last"), Schemes, {});

  // The recursive list traversal: the argument's next field at offset 0
  // re-enters the same variable chain; the payload at offset 4 reaches the
  // file-descriptor bound; #SuccessZ flows to the output.
  EXPECT_TRUE(
      derives(R.C, "close_last.in0.load.s32@4", "#FileDescriptor"))
      << R.C.str(Syms, Lat);
  EXPECT_TRUE(derives(R.C, "#SuccessZ", "close_last.out"));
  // The loop: the value loaded from offset 0 feeds back into the pointer
  // that is dereferenced again.
  EXPECT_TRUE(derives(R.C, "close_last.in0.load.s32@0.load.s32@4",
                      "#FileDescriptor"));
}

TEST_F(GenTest, GeneratedNameRenderIsByteStable) {
  // Pins the rendered naming conventions across the interned-id refactor
  // (PR 4): def-site variables `Fn!loc@site`, entry definitions `@in`,
  // procedure-local fresh tags `merge$k` / `imm$k`, callsite instances
  // `Fn!callee@idx` with `$exN` instantiation existentials, module-level
  // `g!` globals, and interface locators `F.inK` / `F.out`. Any change to
  // this exact text invalidates every golden .expected file and the
  // cross-run stability the generation cache keys rely on.
  Module M = parseModule(R"(
global counter, 4
extern alloc
fn f:
  load eax, [esp+4]
  test eax, eax
  jnz skip
  mov ebx, eax
skip:
  mov ecx, ebx
  add ecx, 8
  push ecx
  call alloc
  add esp, 4
  load edx, [@counter]
  store [esp-4], edx
  ret
)");
  uint32_t AllocId = *M.findFunction("alloc");
  M.Funcs[AllocId].NumStackParams = 1;
  M.Funcs[AllocId].ReturnsValue = true;

  // alloc's scheme has one existential, so instantiation exercises the
  // callsite-scoped `$ex` numbering.
  TypeScheme Scheme;
  Scheme.ProcVar = TypeVariable::var(Syms.intern("alloc"));
  TypeVariable Ex = TypeVariable::var(Syms.intern("τ$alloc$0"));
  Scheme.Existentials.push_back(Ex);
  Scheme.Constraints.addSubtype(
      DerivedTypeVariable(Scheme.ProcVar, {Label::in(0)}),
      DerivedTypeVariable(Ex));
  Scheme.Constraints.addSubtype(
      DerivedTypeVariable(Ex),
      DerivedTypeVariable(Scheme.ProcVar, {Label::out()}));

  ConstraintGenerator Gen(Syms, Lat, M);
  std::unordered_map<uint32_t, TypeScheme> Schemes;
  Schemes[AllocId] = Scheme;
  GenResult R = Gen.generate(*M.findFunction("f"), Schemes, {});

  EXPECT_EQ(R.C.str(Syms, Lat),
            "add(f!merge$0, f!imm$1; f!ecx@5)\n"
            "f!alloc@7$ex0 <= f!alloc@7.out\n"
            "f!alloc@7.in0 <= f!alloc@7$ex0\n"
            "f!alloc@7.out <= f!eax@7\n"
            "f!eax@0 <= f!ebx@3\n"
            "f!eax@7 <= f.out\n"
            "f!ebx@3 <= f!merge$0\n"
            "f!ebx@in <= f!merge$0\n"
            "f!edx@9 <= f!stk-4@10\n"
            "f!imm$1 <= num32\n"
            "f!merge$0 <= f!ecx@4\n"
            "f!merge$0 <= f!stk-4@6\n"
            "f!stk-4@6 <= f!alloc@7.in0\n"
            "f!stk4@in <= f!eax@0\n"
            "f.in0 <= f!stk4@in\n"
            "f.in1 <= f!ebx@in\n"
            "g!counter <= f!edx@9\n");

  // Callsite instance variables are recorded in body order for the
  // generation cache's symbol-parity replay.
  ASSERT_EQ(R.Callsites.size(), 1u);
  EXPECT_EQ(Syms.name(R.Callsites[0].symbol()), "f!alloc@7");
  EXPECT_TRUE(R.Interesting.count(
      TypeVariable::var(Syms.intern("g!counter"))));
}

TEST_F(GenTest, RegenerationIsBitIdenticalAcrossGeneratorsAndTables) {
  // The interned-location tables are per-generate state: two generators
  // over two symbol tables must render identical constraints (the
  // cross-process stability the generation cache's payloads assume).
  const char *Asm = R"(
fn h:
  load eax, [esp+4]
  load ebx, [eax+4]
  add ebx, 12
  store [eax+8], ebx
  ret
)";
  Module M = parseModule(Asm);
  ConstraintGenerator Gen1(Syms, Lat, M);
  GenResult R1 = Gen1.generate(*M.findFunction("h"), {}, {});
  GenResult R2 = Gen1.generate(*M.findFunction("h"), {}, {});
  EXPECT_EQ(R1.C.str(Syms, Lat), R2.C.str(Syms, Lat));

  SymbolTable OtherSyms;
  ConstraintGenerator Gen2(OtherSyms, Lat, M);
  GenResult R3 = Gen2.generate(*M.findFunction("h"), {}, {});
  EXPECT_EQ(R1.C.str(Syms, Lat), R3.C.str(OtherSyms, Lat));
}

TEST_F(GenTest, GenKeyTracksDependencies) {
  Module M = parseModule(R"(
fn callee:
  load eax, [esp+4]
  ret
fn caller:
  push 1
  call callee
  add esp, 4
  ret
)");
  uint32_t CalleeId = *M.findFunction("callee");
  uint32_t CallerId = *M.findFunction("caller");
  ConstraintGenerator Gen(Syms, Lat, M);
  Hash128 Env = ConstraintGenerator::envSig(M, Lat);

  TypeScheme SchemeA, SchemeB;
  SchemeA.ProcVar = TypeVariable::var(Syms.intern("callee"));
  SchemeB.ProcVar = SchemeA.ProcVar;
  SchemeB.Constraints.addSubtype(
      DerivedTypeVariable(SchemeB.ProcVar, {Label::in(0)}),
      DerivedTypeVariable(SchemeB.ProcVar, {Label::out()}));
  Hash128 HashA = schemeStructuralHash(SchemeA, Syms, Lat);
  Hash128 HashB = schemeStructuralHash(SchemeB, Syms, Lat);

  auto KeyWith = [&](const Hash128 *CalleeHash) {
    return Gen.genKey(CallerId, {}, Env, [&](uint32_t F) {
      return F == CalleeId ? CalleeHash : nullptr;
    });
  };
  Hash128 KeyA = KeyWith(&HashA);
  EXPECT_EQ(KeyA, KeyWith(&HashA)) << "keys must be deterministic";
  EXPECT_NE(KeyA, KeyWith(&HashB)) << "callee scheme identity is in the key";
  EXPECT_NE(KeyA, KeyWith(nullptr)) << "scheme presence is in the key";
  EXPECT_NE(KeyA, Gen.genKey(CalleeId, {}, Env, [](uint32_t) {
              return nullptr;
            }))
      << "different functions key differently";
}
