//===- AnalysisTest.cpp - Stack / reaching defs / liveness tests -------------===//

#include "analysis/CallGraph.h"
#include "analysis/InterfaceRecovery.h"
#include "analysis/Liveness.h"
#include "analysis/ReachingDefs.h"
#include "analysis/StackAnalysis.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

Module parseOk(const std::string &Text) {
  AsmParser P;
  auto M = P.parse(Text);
  if (!M) {
    ADD_FAILURE() << P.error();
    return Module();
  }
  return *M;
}

} // namespace

TEST(StackAnalysis, TracksPushPopAndImm) {
  Module M = parseOk(R"(
fn f:
  push ebx
  sub esp, 8
  load eax, [esp+12]
  add esp, 8
  pop ebx
  ret
)");
  Cfg G(M.Funcs[0]);
  StackAnalysis SA(M.Funcs[0], G);
  EXPECT_EQ(SA.espAt(0), 0);
  EXPECT_EQ(SA.espAt(1), -4);
  EXPECT_EQ(SA.espAt(2), -12);
  // [esp+12] at delta -12 resolves to slot 0 (the return address).
  EXPECT_EQ(SA.slotFor(2, M.Funcs[0].Body[2].Mem), 0);
  EXPECT_EQ(SA.espAt(5), 0);
  EXPECT_TRUE(SA.balanced());
}

TEST(StackAnalysis, FramePointerIdiom) {
  Module M = parseOk(R"(
fn f:
  push ebp
  mov ebp, esp
  sub esp, 8
  load eax, [ebp+8]
  store [ebp-4], eax
  mov esp, ebp
  pop ebp
  ret
)");
  Cfg G(M.Funcs[0]);
  StackAnalysis SA(M.Funcs[0], G);
  // After push ebp; mov ebp, esp: ebp = entry - 4.
  EXPECT_EQ(SA.ebpAt(3), -4);
  // [ebp+8] -> slot 4: the first stack parameter.
  EXPECT_EQ(SA.slotFor(3, M.Funcs[0].Body[3].Mem), 4);
  // [ebp-4] -> slot -8: a local.
  EXPECT_EQ(SA.slotFor(4, M.Funcs[0].Body[4].Mem), -8);
  EXPECT_TRUE(SA.balanced());
}

TEST(StackAnalysis, MergeLosesDisagreeingOffsets) {
  Module M = parseOk(R"(
fn f:
  cmp eax, 0
  jz skip
  push eax
skip:
  load ebx, [esp+4]
  ret
)");
  Cfg G(M.Funcs[0]);
  StackAnalysis SA(M.Funcs[0], G);
  // At the join the two paths have esp = 0 and esp = -4: unknown.
  EXPECT_FALSE(SA.espAt(3).has_value());
}

TEST(ReachingDefs, DistinguishesRedefinitions) {
  Module M = parseOk(R"(
fn f:
  mov eax, 1
  mov ebx, eax
  mov eax, 2
  mov ecx, eax
  ret
)");
  const Function &F = M.Funcs[0];
  Cfg G(F);
  StackAnalysis SA(F, G);
  ReachingDefs RD(F, G, SA);
  DefState S = RD.blockIn(0);
  RD.step(S, 0);
  EXPECT_EQ(S[Location::reg(Reg::Eax)], std::vector<uint32_t>{0u});
  RD.step(S, 1);
  RD.step(S, 2);
  EXPECT_EQ(S[Location::reg(Reg::Eax)], std::vector<uint32_t>{2u});
}

TEST(ReachingDefs, MergesAcrossJoin) {
  Module M = parseOk(R"(
fn f:
  cmp eax, 0
  jz other
  mov ebx, 1
  jmp join
other:
  mov ebx, 2
join:
  mov ecx, ebx
  ret
)");
  const Function &F = M.Funcs[0];
  Cfg G(F);
  StackAnalysis SA(F, G);
  ReachingDefs RD(F, G, SA);
  uint32_t JoinBlock = G.blockOf(5);
  DefState S = RD.blockIn(JoinBlock);
  auto Defs = S[Location::reg(Reg::Ebx)];
  EXPECT_EQ(Defs.size(), 2u); // both movs reach
}

TEST(ReachingDefs, StackSlotReuseSeparates) {
  // The §2.1 stack-slot reuse idiom: one slot, two unrelated lifetimes.
  Module M = parseOk(R"(
fn f:
  mov eax, 1
  store [esp-4], eax
  load ebx, [esp-4]
  mov eax, 2
  store [esp-4], eax
  load ecx, [esp-4]
  ret
)");
  const Function &F = M.Funcs[0];
  Cfg G(F);
  StackAnalysis SA(F, G);
  ReachingDefs RD(F, G, SA);
  DefState S = RD.blockIn(0);
  for (uint32_t I = 0; I <= 1; ++I)
    RD.step(S, I);
  EXPECT_EQ(S[Location::slot(-4)], std::vector<uint32_t>{1u});
  for (uint32_t I = 2; I <= 4; ++I)
    RD.step(S, I);
  EXPECT_EQ(S[Location::slot(-4)], std::vector<uint32_t>{4u});
}

TEST(Liveness, EntryLivenessFindsRegisterParams) {
  Module M = parseOk(R"(
fn f:
  mov eax, ecx
  ret
)");
  Liveness LV(M.Funcs[0], Cfg(M.Funcs[0]));
  EXPECT_TRUE(LV.liveAtEntry()[static_cast<unsigned>(Reg::Ecx)]);
  EXPECT_FALSE(LV.liveAtEntry()[static_cast<unsigned>(Reg::Ebx)]);
}

TEST(Liveness, DefKillsLiveness) {
  Module M = parseOk(R"(
fn f:
  mov ecx, 5
  mov eax, ecx
  ret
)");
  Liveness LV(M.Funcs[0], Cfg(M.Funcs[0]));
  EXPECT_FALSE(LV.liveAtEntry()[static_cast<unsigned>(Reg::Ecx)]);
}

TEST(CallGraph, SccFindsMutualRecursion) {
  Module M = parseOk(R"(
fn a:
  call b
  ret
fn b:
  call a
  ret
fn main:
  call a
  halt
)");
  CallGraph CG(M);
  EXPECT_EQ(CG.sccOf(0), CG.sccOf(1));
  EXPECT_NE(CG.sccOf(0), CG.sccOf(2));
  // Bottom-up: the {a, b} SCC precedes main's.
  const auto &Order = CG.bottomUp();
  uint32_t PosAB = 0, PosMain = 0;
  for (uint32_t I = 0; I < Order.size(); ++I) {
    if (Order[I] == CG.sccOf(0))
      PosAB = I;
    if (Order[I] == CG.sccOf(2))
      PosMain = I;
  }
  EXPECT_LT(PosAB, PosMain);
}

TEST(InterfaceRecovery, StackParamsAndReturn) {
  Module M = parseOk(R"(
fn add2:
  load eax, [esp+4]
  load ebx, [esp+8]
  add eax, ebx
  ret
)");
  recoverInterfaces(M);
  EXPECT_EQ(M.Funcs[0].NumStackParams, 2u);
  EXPECT_TRUE(M.Funcs[0].ReturnsValue);
  EXPECT_TRUE(M.Funcs[0].RegParams.empty());
}

TEST(InterfaceRecovery, RegisterParamDetected) {
  Module M = parseOk(R"(
fn f:
  mov eax, ecx
  ret
)");
  recoverInterfaces(M);
  ASSERT_EQ(M.Funcs[0].RegParams.size(), 1u);
  EXPECT_EQ(M.Funcs[0].RegParams[0], Reg::Ecx);
}

TEST(InterfaceRecovery, PushEcxIdiomIsFalsePositive) {
  // The §2.5 hazard: "push ecx" reserving a slot looks like a register
  // parameter. Interface recovery *should* report it (conservatively); the
  // type system's job is to not let it poison types.
  Module M = parseOk(R"(
fn f:
  push ecx
  mov eax, 0
  store [esp], eax
  add esp, 4
  ret
)");
  recoverInterfaces(M);
  ASSERT_EQ(M.Funcs[0].RegParams.size(), 1u);
  EXPECT_EQ(M.Funcs[0].RegParams[0], Reg::Ecx);
}

TEST(InterfaceRecovery, NoReturnWhenEaxUntouched) {
  Module M = parseOk(R"(
fn f:
  mov ebx, 1
  ret
)");
  recoverInterfaces(M);
  EXPECT_FALSE(M.Funcs[0].ReturnsValue);
}

TEST(InterfaceRecovery, FortuitousReuseStillReturns) {
  // Figure 1: return value may come from either branch's call result.
  Module M = parseOk(R"(
extern get_s
fn f:
  call get_s
  test eax, eax
  jz out
  add eax, 1
out:
  ret
)");
  recoverInterfaces(M);
  EXPECT_TRUE(M.Funcs[1].ReturnsValue);
}
