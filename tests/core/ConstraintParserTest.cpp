//===- ConstraintParserTest.cpp - Textual constraint syntax tests ----------===//

#include "core/ConstraintParser.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class ParserTest : public ::testing::Test {
protected:
  ParserTest() : Lat(makeDefaultLattice()), Parser(Syms, Lat) {}

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
};

} // namespace

TEST_F(ParserTest, ParsesBareVariable) {
  auto D = Parser.parseDtv("close_last");
  ASSERT_TRUE(D) << Parser.error();
  EXPECT_TRUE(D->isBaseOnly());
  EXPECT_TRUE(D->base().isVar());
}

TEST_F(ParserTest, ParsesLabels) {
  auto D = Parser.parseDtv("F.in0.load.s32@4");
  ASSERT_TRUE(D) << Parser.error();
  ASSERT_EQ(D->size(), 3u);
  EXPECT_EQ(D->labels()[0], Label::in(0));
  EXPECT_EQ(D->labels()[1], Label::load());
  EXPECT_EQ(D->labels()[2], Label::field(32, 4));
}

TEST_F(ParserTest, RecognizesLatticeConstants) {
  auto D = Parser.parseDtv("#FileDescriptor");
  ASSERT_TRUE(D) << Parser.error();
  EXPECT_TRUE(D->base().isConstant());
  auto I = Parser.parseDtv("int");
  ASSERT_TRUE(I);
  EXPECT_TRUE(I->base().isConstant());
}

TEST_F(ParserTest, RejectsUnknownTag) {
  EXPECT_FALSE(Parser.parseDtv("#NoSuchTag"));
  EXPECT_NE(Parser.error().find("unknown semantic tag"), std::string::npos);
}

TEST_F(ParserTest, RejectsBadLabel) {
  EXPECT_FALSE(Parser.parseDtv("x.bogus"));
}

TEST_F(ParserTest, ParsesConstraintSet) {
  auto C = Parser.parse(R"(
    ; close_last-style constraints
    F.in0 <= t
    t.load.s32@0 <= t
    t.load.s32@4 <= int     // fd flows to close
    int <= F.out
    var F.in0.store
    add(a, b; c)
    sub(p, q; r)
  )");
  ASSERT_TRUE(C) << Parser.error();
  EXPECT_EQ(C->subtypes().size(), 4u);
  EXPECT_EQ(C->vars().size(), 1u);
  ASSERT_EQ(C->addSubs().size(), 2u);
  EXPECT_FALSE(C->addSubs()[0].IsSub);
  EXPECT_TRUE(C->addSubs()[1].IsSub);
}

TEST_F(ParserTest, ReportsLineNumbers) {
  auto C = Parser.parse("a <= b\nc <=\n");
  EXPECT_FALSE(C);
  EXPECT_NE(Parser.error().find("line 2"), std::string::npos);
}

TEST_F(ParserTest, DeduplicatesConstraints) {
  auto C = Parser.parse("a <= b\na <= b\n");
  ASSERT_TRUE(C);
  EXPECT_EQ(C->subtypes().size(), 1u);
}

TEST_F(ParserTest, RoundTripsThroughPrinter) {
  auto C = Parser.parse("x.load.s32@0 <= y\nint <= F.out\nvar F.in1\n");
  ASSERT_TRUE(C) << Parser.error();
  std::string Printed = C->str(Syms, Lat);
  auto C2 = Parser.parse(Printed);
  ASSERT_TRUE(C2) << Parser.error();
  EXPECT_EQ(C2->str(Syms, Lat), Printed);
}
