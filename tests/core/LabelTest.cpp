//===- LabelTest.cpp - Field label and variance unit tests -----------------===//

#include "core/DerivedTypeVariable.h"
#include "core/Label.h"

#include <gtest/gtest.h>

using namespace retypd;

TEST(Label, KindsAndOperands) {
  EXPECT_TRUE(Label::load().isLoad());
  EXPECT_TRUE(Label::store().isStore());
  EXPECT_TRUE(Label::in(3).isIn());
  EXPECT_EQ(Label::in(3).index(), 3u);
  EXPECT_EQ(Label::out().index(), 0u);
  Label F = Label::field(32, 4);
  EXPECT_TRUE(F.isField());
  EXPECT_EQ(F.bits(), 32);
  EXPECT_EQ(F.offset(), 4);
}

TEST(Label, NegativeFieldOffsetsRoundTrip) {
  Label F = Label::field(16, -8);
  EXPECT_EQ(F.bits(), 16);
  EXPECT_EQ(F.offset(), -8);
}

TEST(Label, VariancePerTable1) {
  EXPECT_EQ(Label::in(0).variance(), Variance::Contravariant);
  EXPECT_EQ(Label::store().variance(), Variance::Contravariant);
  EXPECT_EQ(Label::out().variance(), Variance::Covariant);
  EXPECT_EQ(Label::load().variance(), Variance::Covariant);
  EXPECT_EQ(Label::field(32, 0).variance(), Variance::Covariant);
}

TEST(Label, SignMonoidLaws) {
  using enum Variance;
  EXPECT_EQ(compose(Covariant, Covariant), Covariant);
  EXPECT_EQ(compose(Contravariant, Contravariant), Covariant);
  EXPECT_EQ(compose(Covariant, Contravariant), Contravariant);
  EXPECT_EQ(compose(Contravariant, Covariant), Contravariant);
}

TEST(Label, WordVariance) {
  std::vector<Label> W1{Label::load(), Label::field(32, 0)};
  EXPECT_EQ(wordVariance(W1), Variance::Covariant);
  std::vector<Label> W2{Label::in(0), Label::load()};
  EXPECT_EQ(wordVariance(W2), Variance::Contravariant);
  std::vector<Label> W3{Label::in(0), Label::store()};
  EXPECT_EQ(wordVariance(W3), Variance::Covariant);
  EXPECT_EQ(wordVariance(std::span<const Label>{}), Variance::Covariant);
}

TEST(Label, Rendering) {
  EXPECT_EQ(Label::load().str(), ".load");
  EXPECT_EQ(Label::in(2).str(), ".in2");
  EXPECT_EQ(Label::out().str(), ".out");
  EXPECT_EQ(Label::field(32, 4).str(), ".s32@4");
}

TEST(Label, OrderingAndEquality) {
  EXPECT_EQ(Label::load(), Label::load());
  EXPECT_NE(Label::load(), Label::store());
  EXPECT_NE(Label::field(32, 0), Label::field(32, 4));
  EXPECT_NE(Label::in(0), Label::in(1));
}

TEST(DerivedTypeVariable, ExtendPrefixParent) {
  SymbolTable Syms;
  TypeVariable X = TypeVariable::var(Syms.intern("x"));
  DerivedTypeVariable D(X);
  EXPECT_TRUE(D.isBaseOnly());
  DerivedTypeVariable DL = D.extended(Label::load());
  DerivedTypeVariable DLF = DL.extended(Label::field(32, 4));
  EXPECT_EQ(DLF.size(), 2u);
  EXPECT_EQ(DLF.parent(), DL);
  EXPECT_EQ(DLF.prefix(0), D);
  EXPECT_EQ(DLF.lastLabel(), Label::field(32, 4));
  EXPECT_EQ(DLF.variance(), Variance::Covariant);
}

TEST(DerivedTypeVariable, ConstantBases) {
  Lattice L = makeDefaultLattice();
  TypeVariable K = TypeVariable::constant(*L.lookup("int"));
  EXPECT_TRUE(K.isConstant());
  EXPECT_FALSE(K.isVar());
  SymbolTable Syms;
  EXPECT_EQ(DerivedTypeVariable(K).str(Syms, L), "int");
}
