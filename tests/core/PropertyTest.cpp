//===- PropertyTest.cpp - Parameterized property suites ----------------------===//
//
// Property-style sweeps over randomized inputs (seeded, deterministic):
//  - Λ lattice laws on random element pairs/triples;
//  - sketch lattice laws (Figure 18) on random sketches;
//  - constraint-graph mirror symmetry (Lemma D.1): A <= B is witnessed by
//    a covariant path iff the contravariant mirror path exists;
//  - saturation monotonicity: adding constraints never removes derivable
//    facts.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintGraph.h"
#include "core/ConstraintParser.h"
#include "core/Sketch.h"

#include <gtest/gtest.h>

#include <random>

using namespace retypd;

//===----------------------------------------------------------------------===//
// Λ lattice laws
//===----------------------------------------------------------------------===//

class LatticeLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(LatticeLaws, MeetJoinLaws) {
  Lattice L = makeDefaultLattice();
  std::mt19937 Rng(GetParam());
  std::uniform_int_distribution<LatticeElem> Pick(
      0, static_cast<LatticeElem>(L.size() - 1));

  for (int Round = 0; Round < 200; ++Round) {
    LatticeElem A = Pick(Rng), B = Pick(Rng), C = Pick(Rng);

    // Commutativity.
    EXPECT_EQ(L.join(A, B), L.join(B, A));
    EXPECT_EQ(L.meet(A, B), L.meet(B, A));
    // Idempotence.
    EXPECT_EQ(L.join(A, A), A);
    EXPECT_EQ(L.meet(A, A), A);
    // Bound laws.
    EXPECT_TRUE(L.leq(A, L.join(A, B)));
    EXPECT_TRUE(L.leq(L.meet(A, B), A));
    // Absorption.
    EXPECT_EQ(L.join(A, L.meet(A, B)), A);
    EXPECT_EQ(L.meet(A, L.join(A, B)), A);
    // Associativity.
    EXPECT_EQ(L.join(L.join(A, B), C), L.join(A, L.join(B, C)));
    EXPECT_EQ(L.meet(L.meet(A, B), C), L.meet(A, L.meet(B, C)));
    // Consistency of leq with meet/join.
    if (L.leq(A, B)) {
      EXPECT_EQ(L.join(A, B), B);
      EXPECT_EQ(L.meet(A, B), A);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeLaws,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

//===----------------------------------------------------------------------===//
// Sketch lattice laws (Figure 18)
//===----------------------------------------------------------------------===//

namespace {

/// Builds a random sketch with up to \p MaxNodes states (cycles allowed).
Sketch randomSketch(std::mt19937 &Rng, const Lattice &L,
                    unsigned MaxNodes = 5) {
  std::uniform_int_distribution<unsigned> NodeCount(1, MaxNodes);
  std::uniform_int_distribution<LatticeElem> Mark(
      0, static_cast<LatticeElem>(L.size() - 1));
  unsigned N = NodeCount(Rng);
  Sketch S;
  S.node(S.root()).Mark = Mark(Rng);
  for (unsigned I = 1; I < N; ++I)
    S.addNode(Mark(Rng));
  // Random edges over a small label alphabet.
  const Label Labels[] = {Label::load(), Label::store(),
                          Label::field(32, 0), Label::field(32, 4),
                          Label::in(0), Label::out()};
  std::uniform_int_distribution<unsigned> PickLabel(0, 5);
  std::uniform_int_distribution<uint32_t> PickNode(0, N - 1);
  unsigned Edges = NodeCount(Rng) + 1;
  for (unsigned E = 0; E < Edges; ++E)
    S.addEdge(PickNode(Rng), Labels[PickLabel(Rng)], PickNode(Rng));
  return S;
}

} // namespace

class SketchLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(SketchLaws, LatticeLawsOnRandomSketches) {
  Lattice L = makeDefaultLattice();
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 25; ++Round) {
    Sketch A = randomSketch(Rng, L);
    Sketch B = randomSketch(Rng, L);

    Sketch M = Sketch::meet(A, B, L);
    Sketch J = Sketch::join(A, B, L);

    // Bound properties.
    EXPECT_TRUE(Sketch::leq(M, A, L));
    EXPECT_TRUE(Sketch::leq(M, B, L));
    EXPECT_TRUE(Sketch::leq(A, J, L));
    EXPECT_TRUE(Sketch::leq(B, J, L));
    // Idempotence up to bisimulation.
    EXPECT_TRUE(Sketch::equal(Sketch::meet(A, A, L), A, L));
    EXPECT_TRUE(Sketch::equal(Sketch::join(A, A, L), A, L));
    // Commutativity up to bisimulation.
    EXPECT_TRUE(Sketch::equal(M, Sketch::meet(B, A, L), L));
    EXPECT_TRUE(Sketch::equal(J, Sketch::join(B, A, L), L));
    // leq is a partial order on the generated sample.
    EXPECT_TRUE(Sketch::leq(A, A, L));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchLaws,
                         ::testing::Values(11u, 12u, 13u, 14u));

//===----------------------------------------------------------------------===//
// Constraint-graph properties
//===----------------------------------------------------------------------===//

namespace {

/// A random constraint set over a small variable pool, with field accesses.
ConstraintSet randomConstraints(std::mt19937 &Rng, SymbolTable &Syms,
                                const Lattice &Lat) {
  ConstraintParser P(Syms, Lat);
  const char *Vars[] = {"a", "b", "c", "d", "p", "q"};
  const char *Words[] = {"",          ".load",          ".store",
                         ".load.s32@0", ".store.s32@0", ".load.s32@4"};
  std::uniform_int_distribution<unsigned> PickVar(0, 5), PickWord(0, 5),
      Count(3, 10);
  std::string Text;
  unsigned N = Count(Rng);
  for (unsigned I = 0; I < N; ++I) {
    Text += std::string(Vars[PickVar(Rng)]) + Words[PickWord(Rng)] +
            " <= " + Vars[PickVar(Rng)] + Words[PickWord(Rng)] + "\n";
  }
  auto C = P.parse(Text);
  EXPECT_TRUE(C) << P.error();
  return C ? *C : ConstraintSet();
}

bool pathCoTo(const ConstraintGraph &G, GraphNodeId From, GraphNodeId To) {
  if (From == ConstraintGraph::NoNode || To == ConstraintGraph::NoNode)
    return false;
  for (GraphNodeId N : G.oneReachableFrom(From))
    if (N == To)
      return true;
  return false;
}

} // namespace

class GraphLaws : public ::testing::TestWithParam<unsigned> {};

// Lemma D.1: the saturated graph is mirror-symmetric — a covariant 1-path
// A→B exists iff the contravariant 1-path B→A does.
TEST_P(GraphLaws, MirrorSymmetry) {
  Lattice Lat = makeDefaultLattice();
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 15; ++Round) {
    SymbolTable Syms;
    ConstraintSet C = randomConstraints(Rng, Syms, Lat);
    ConstraintGraph G(C);
    G.saturate();
    for (GraphNodeId A = 0; A < G.numNodes(); ++A) {
      if (G.node(A).Tag != Variance::Covariant)
        continue;
      GraphNodeId AMirror =
          G.lookup(G.node(A).Dtv, Variance::Contravariant);
      for (GraphNodeId B : G.oneReachableFrom(A)) {
        if (G.node(B).Tag != Variance::Covariant)
          continue;
        GraphNodeId BMirror =
            G.lookup(G.node(B).Dtv, Variance::Contravariant);
        if (AMirror == ConstraintGraph::NoNode ||
            BMirror == ConstraintGraph::NoNode)
          continue;
        EXPECT_TRUE(pathCoTo(G, BMirror, AMirror))
            << G.node(A).Dtv.str(Syms, Lat) << " <= "
            << G.node(B).Dtv.str(Syms, Lat)
            << " has no mirror derivation";
      }
    }
  }
}

// Monotonicity: adding a constraint never removes derivable facts.
TEST_P(GraphLaws, SaturationMonotone) {
  Lattice Lat = makeDefaultLattice();
  std::mt19937 Rng(GetParam() + 100);
  for (int Round = 0; Round < 10; ++Round) {
    SymbolTable Syms;
    ConstraintSet C = randomConstraints(Rng, Syms, Lat);
    ConstraintGraph G1(C);
    G1.saturate();

    ConstraintParser P(Syms, Lat);
    ConstraintSet C2 = C;
    C2.addSubtype(*P.parseDtv("a"), *P.parseDtv("q"));
    ConstraintGraph G2(C2);
    G2.saturate();

    for (GraphNodeId A = 0; A < G1.numNodes(); ++A) {
      for (GraphNodeId B : G1.oneReachableFrom(A)) {
        GraphNodeId A2 = G2.lookup(G1.node(A).Dtv, G1.node(A).Tag);
        GraphNodeId B2 = G2.lookup(G1.node(B).Dtv, G1.node(B).Tag);
        EXPECT_TRUE(pathCoTo(G2, A2, B2) || A2 == B2);
      }
    }
  }
}

// Saturation terminates and is idempotent: re-running adds nothing.
TEST_P(GraphLaws, SaturationIdempotent) {
  Lattice Lat = makeDefaultLattice();
  std::mt19937 Rng(GetParam() + 200);
  SymbolTable Syms;
  ConstraintSet C = randomConstraints(Rng, Syms, Lat);
  ConstraintGraph G(C);
  G.saturate();
  size_t Edges = G.numSaturationEdges();
  G.saturate();
  EXPECT_EQ(G.numSaturationEdges(), Edges);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphLaws,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));
