//===- SaturationPropertyTest.cpp - Randomized simplification oracles ---------===//
//
// Property tests over randomized constraint sets (seeded mt19937 — every
// failure reproduces from the case number):
//
//  * Soundness: every derivable interesting-to-interesting subtype
//    relation of the input set is still derivable from the simplified
//    scheme (the guarantee of paper §5 / Definition D.1's elementary
//    proofs).
//  * Determinism: simplifying the same set twice yields textually
//    identical schemes, and whole-pipeline runs over synthetic modules are
//    byte-identical across --jobs settings.
//
//===----------------------------------------------------------------------===//

#include "core/Simplifier.h"
#include "frontend/Pipeline.h"
#include "frontend/ReportPrinter.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

#include <random>

using namespace retypd;

namespace {

class SaturationPropertyTest : public ::testing::Test {
protected:
  SaturationPropertyTest() : Lat(makeDefaultLattice()), Simp(Syms, Lat) {}

  TypeVariable var(const std::string &Name) {
    return TypeVariable::var(Syms.intern(Name));
  }

  SymbolTable Syms;
  Lattice Lat;
  Simplifier Simp;
};

/// Does \p C entail Lhs <= Rhs? Adds capability declarations for the two
/// queried DTVs (so their prefix chains exist even if \p C never spells
/// them), saturates, and checks for a pure 1-path between the covariant
/// nodes.
bool derives(const ConstraintSet &C, const DerivedTypeVariable &Lhs,
             const DerivedTypeVariable &Rhs) {
  ConstraintSet Q = C;
  Q.addVar(Lhs);
  Q.addVar(Rhs);
  ConstraintGraph G(Q);
  G.saturate();
  GraphNodeId Ln = G.lookup(Lhs, Variance::Covariant);
  GraphNodeId Rn = G.lookup(Rhs, Variance::Covariant);
  if (Ln == ConstraintGraph::NoNode || Rn == ConstraintGraph::NoNode)
    return false;
  for (GraphNodeId N : G.oneReachableFrom(Ln))
    if (N == Rn)
      return true;
  return false;
}

/// One random constraint set over a small alphabet. Variables F (the
/// procedure), g0/g1 (interesting globals) and t0..t3 (uninteresting
/// temporaries that simplification must eliminate).
struct RandomCase {
  ConstraintSet C;
  TypeVariable Proc;
  std::unordered_set<TypeVariable> Interesting;
  std::vector<DerivedTypeVariable> Queries; ///< interesting-based DTVs
};

RandomCase makeCase(SymbolTable &Syms, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  RandomCase Out;
  auto V = [&](const std::string &N) {
    return TypeVariable::var(Syms.intern(N));
  };
  Out.Proc = V("F");
  std::vector<TypeVariable> Pool{V("F"), V("g0"), V("g1"),
                                 V("t0"), V("t1"), V("t2"), V("t3")};
  Out.Interesting = {V("g0"), V("g1")};

  const std::vector<Label> Alphabet{
      Label::in(0),  Label::in(1),      Label::out(),
      Label::load(), Label::store(),    Label::field(32, 0),
      Label::field(32, 4)};

  auto RandomDtv = [&] {
    TypeVariable Base = Pool[Rng() % Pool.size()];
    std::vector<Label> Word;
    size_t Len = Rng() % 3;
    // Procedure-rooted words start with in/out, pointer-ish otherwise —
    // mirrors what constraint generation emits.
    for (size_t I = 0; I < Len; ++I)
      Word.push_back(Alphabet[Rng() % Alphabet.size()]);
    return DerivedTypeVariable(Base, std::move(Word));
  };

  size_t NumConstraints = 8 + Rng() % 14;
  for (size_t I = 0; I < NumConstraints; ++I) {
    DerivedTypeVariable A = RandomDtv(), B = RandomDtv();
    if (A == B)
      continue;
    Out.C.addSubtype(A, B);
  }
  // Anchor the procedure so its scheme is non-trivial.
  Out.C.addVar(DerivedTypeVariable(Out.Proc, {Label::in(0)}));
  Out.C.addVar(DerivedTypeVariable(Out.Proc, {Label::out()}));

  for (const DerivedTypeVariable &D : Out.C.mentionedDtvs()) {
    bool InterestingBase =
        D.base() == Out.Proc || Out.Interesting.count(D.base()) != 0;
    if (InterestingBase && Out.Queries.size() < 10)
      Out.Queries.push_back(D);
  }
  return Out;
}

} // namespace

TEST_F(SaturationPropertyTest, SimplificationPreservesDerivableFacts) {
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    RandomCase Case = makeCase(Syms, Seed);
    TypeScheme Scheme = Simp.simplify(Case.C, Case.Proc, Case.Interesting);

    for (const DerivedTypeVariable &A : Case.Queries)
      for (const DerivedTypeVariable &B : Case.Queries) {
        if (A == B || !derives(Case.C, A, B))
          continue;
        ++Checked;
        EXPECT_TRUE(derives(Scheme.Constraints, A, B))
            << "seed " << Seed << ": lost " << A.str(Syms, Lat) << " <= "
            << B.str(Syms, Lat) << "\nscheme:\n"
            << Scheme.str(Syms, Lat);
      }
  }
  // The corpus must actually exercise the oracle.
  EXPECT_GT(Checked, 100u);
}

TEST_F(SaturationPropertyTest, SimplificationIsDeterministic) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    RandomCase Case = makeCase(Syms, Seed);
    TypeScheme S1 = Simp.simplify(Case.C, Case.Proc, Case.Interesting);
    TypeScheme S2 = Simp.simplify(Case.C, Case.Proc, Case.Interesting);
    EXPECT_EQ(S1.str(Syms, Lat), S2.str(Syms, Lat)) << "seed " << Seed;
    EXPECT_EQ(S1.Existentials, S2.Existentials) << "seed " << Seed;
  }
}

TEST_F(SaturationPropertyTest, SaturationIsIdempotentOnSchemes) {
  // Re-simplifying a scheme against the same interesting set must not lose
  // derivable facts (stability of the fixpoint).
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RandomCase Case = makeCase(Syms, Seed);
    TypeScheme S1 = Simp.simplify(Case.C, Case.Proc, Case.Interesting);
    TypeScheme S2 =
        Simp.simplify(S1.Constraints, Case.Proc, Case.Interesting);
    for (const DerivedTypeVariable &A : Case.Queries)
      for (const DerivedTypeVariable &B : Case.Queries) {
        if (A == B)
          continue;
        if (derives(S1.Constraints, A, B)) {
          EXPECT_TRUE(derives(S2.Constraints, A, B))
              << "seed " << Seed << ": " << A.str(Syms, Lat) << " <= "
              << B.str(Syms, Lat);
        }
      }
  }
}

TEST_F(SaturationPropertyTest, PipelineIsByteIdenticalAcrossJobs) {
  // Whole-pipeline determinism over randomized synthetic binaries: the
  // rendered report (structs, prototypes, schemes) must not depend on the
  // worker count.
  SynthGenerator Gen;
  for (uint64_t Seed : {3u, 17u, 29u}) {
    SynthOptions O;
    O.Seed = Seed;
    O.TargetInstructions = 400;
    SynthProgram P = Gen.generate("prop", O);

    auto Render = [&](unsigned Jobs) {
      Module M = P.M; // pipeline mutates the module; run on a copy
      Lattice Lat = makeDefaultLattice();
      PipelineOptions Opts;
      Opts.Jobs = Jobs;
      Pipeline Pipe(Lat, Opts);
      TypeReport R = Pipe.run(M);
      ReportPrintOptions Print;
      Print.Schemes = true;
      return renderReport(R, M, Lat, Print);
    };

    std::string Seq = Render(1);
    EXPECT_EQ(Seq, Render(3)) << "seed " << Seed;
  }
}
