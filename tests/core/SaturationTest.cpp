//===- SaturationTest.cpp - Algorithm D.2 saturation tests -----------------===//
//
// These tests encode the paper's own worked examples:
//  - Figure 4 / §3.3: the two aliased-pointer copy programs, which require
//    the S-POINTER rule to derive X <= Y.
//  - Figure 14: the saturation example from Appendix D.3 where the rule only
//    fires because of the lazy handling.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintGraph.h"
#include "core/ConstraintParser.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class SaturationTest : public ::testing::Test {
protected:
  SaturationTest() : Lat(makeDefaultLattice()), Parser(Syms, Lat) {}

  /// True iff the saturated graph witnesses Lhs <= Rhs via a pure 1-edge
  /// path between covariant nodes (both DTVs must appear in the set).
  bool derives(const ConstraintSet &C, const std::string &Lhs,
               const std::string &Rhs) {
    ConstraintGraph G(C);
    G.saturate();
    auto L = Parser.parseDtv(Lhs);
    auto R = Parser.parseDtv(Rhs);
    EXPECT_TRUE(L && R) << Parser.error();
    GraphNodeId Ln = G.lookup(*L, Variance::Covariant);
    GraphNodeId Rn = G.lookup(*R, Variance::Covariant);
    EXPECT_NE(Ln, ConstraintGraph::NoNode) << Lhs << " not in graph";
    EXPECT_NE(Rn, ConstraintGraph::NoNode) << Rhs << " not in graph";
    for (GraphNodeId N : G.oneReachableFrom(Ln))
      if (N == Rn)
        return true;
    return false;
  }

  ConstraintSet parse(const std::string &Text) {
    auto C = Parser.parse(Text);
    if (!C) {
      ADD_FAILURE() << Parser.error();
      return ConstraintSet();
    }
    return *C;
  }

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
};

} // namespace

// Figure 4, program f(): { p = q; *p = x; y = *q; } — constraint set C'1.
TEST_F(SaturationTest, Figure4FirstProgram) {
  ConstraintSet C = parse(R"(
    q <= p
    x <= p.store
    q.load <= y
  )");
  EXPECT_TRUE(derives(C, "x", "y"));
  EXPECT_FALSE(derives(C, "y", "x"));
}

// Figure 4, program g(): { p = q; *q = x; y = *p; } — constraint set C'2.
TEST_F(SaturationTest, Figure4SecondProgram) {
  ConstraintSet C = parse(R"(
    q <= p
    x <= q.store
    p.load <= y
  )");
  EXPECT_TRUE(derives(C, "x", "y"));
  EXPECT_FALSE(derives(C, "y", "x"));
}

// With the pointer written through one alias and read through an unrelated
// variable, no flow may be derived.
TEST_F(SaturationTest, NoFlowWithoutAliasing) {
  ConstraintSet C = parse(R"(
    x <= p.store
    q.load <= y
  )");
  EXPECT_FALSE(derives(C, "x", "y"));
}

// Figure 14: { p = y; x = p; *x = A; B = *y; }. The S-POINTER application
// happens at a node with no explicit .store capability, so only the lazy
// clause can find it.
TEST_F(SaturationTest, Figure14LazySPointer) {
  ConstraintSet C = parse(R"(
    y <= p
    p <= x
    A <= x.store
    y.load <= B
  )");
  EXPECT_TRUE(derives(C, "A", "B"));
  EXPECT_FALSE(derives(C, "B", "A"));
}

// Writing through the supertype alias and reading through the subtype alias
// still flows: p <= q gives q.store <= p.store (contravariance), and
// S-POINTER at p bridges p.store <= p.load. This is the third aliasing
// pattern implied by §3.3 — both Figure 4 programs and this one are sound.
TEST_F(SaturationTest, StoreThroughSupertypeAliasFlows) {
  ConstraintSet C = parse(R"(
    p <= q
    x <= q.store
    p.load <= y
  )");
  EXPECT_TRUE(derives(C, "x", "y"));
  EXPECT_FALSE(derives(C, "y", "x"));
}

// Transitivity chains survive saturation.
TEST_F(SaturationTest, PlainTransitivity) {
  ConstraintSet C = parse(R"(
    a <= b
    b <= c
    c <= d
  )");
  EXPECT_TRUE(derives(C, "a", "d"));
  EXPECT_FALSE(derives(C, "d", "a"));
}

// Field congruence through subtyping: A <= B lifts to A.load <= B.load via
// a matched forget/recall pair, which saturation shortcuts.
TEST_F(SaturationTest, CovariantFieldLifting) {
  ConstraintSet C = parse(R"(
    A <= B
    k <= A.load
    B.load <= m
  )");
  EXPECT_TRUE(derives(C, "A.load", "B.load"));
  EXPECT_TRUE(derives(C, "k", "m"));
}

// Contravariant lifting: A <= B gives B.store <= A.store.
TEST_F(SaturationTest, ContravariantFieldLifting) {
  ConstraintSet C = parse(R"(
    A <= B
    k <= B.store
    A.store <= m
  )");
  EXPECT_TRUE(derives(C, "B.store", "A.store"));
  EXPECT_TRUE(derives(C, "k", "m"));
}

// The two-level case: writing through a pointer-to-pointer and reading two
// loads deep (exercise nested load/store interplay).
TEST_F(SaturationTest, TwoLevelPointerFlow) {
  ConstraintSet C = parse(R"(
    q <= p
    x <= p.store.s32@0
    q.load.s32@0 <= y
  )");
  EXPECT_TRUE(derives(C, "x", "y"));
}

// Saturation must terminate and add no edges on an already-closed set.
TEST_F(SaturationTest, IdempotentOnChains) {
  ConstraintSet C = parse("a <= b\n");
  ConstraintGraph G(C);
  G.saturate();
  EXPECT_EQ(G.numSaturationEdges(), 0u);
}

// Constants participate like any other variable.
TEST_F(SaturationTest, ConstantBoundsFlow) {
  ConstraintSet C = parse(R"(
    int <= v
    v <= w
    w <= LPARAM
  )");
  EXPECT_TRUE(derives(C, "int", "w"));
  EXPECT_TRUE(derives(C, "v", "LPARAM"));
}
