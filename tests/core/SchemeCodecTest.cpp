//===- SchemeCodecTest.cpp - Binary scheme codec property tests ---------------===//
//
// The codec contract, property-tested over random schemes:
//
//  1. encode/decode round-trips EXACTLY (rendered text, internal constraint
//     order, existential order) and agrees semantically with the legacy
//     text serialization it replaced.
//  2. Decoding is total over corrupt inputs: truncations and byte flips
//     either decode to some valid scheme or return nullopt — never crash,
//     never read out of bounds (format v3's fuzz-ish rejection coverage).
//  3. Structural hashes are order- and symbol-table-independent, and the
//     canonical structural order is a pure function of set content.
//
//===----------------------------------------------------------------------===//

#include "core/SchemeCodec.h"

#include "lattice/Lattice.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace retypd;

namespace {

/// Deterministic random scheme generator. Draws names from a small pool
/// (to force sharing in the payload name table) and words from the full
/// label alphabet.
class RandomSchemeGen {
public:
  RandomSchemeGen(uint32_t Seed, SymbolTable &Syms, const Lattice &Lat)
      : Rng(Seed), Syms(Syms), Lat(Lat) {}

  TypeScheme scheme() {
    TypeScheme S;
    std::string Proc = "proc" + std::to_string(Rng() % 8);
    S.ProcVar = TypeVariable::var(Syms.intern(Proc));
    unsigned NExist = Rng() % 4;
    for (unsigned I = 0; I < NExist; ++I)
      S.Existentials.push_back(TypeVariable::var(
          Syms.intern("τ$" + Proc + "$" + std::to_string(I))));
    unsigned NSubs = 1 + Rng() % 12;
    for (unsigned I = 0; I < NSubs; ++I)
      S.Constraints.addSubtype(dtv(), dtv());
    unsigned NVars = Rng() % 6;
    for (unsigned I = 0; I < NVars; ++I)
      S.Constraints.addVar(dtv());
    unsigned NAdds = Rng() % 4;
    for (unsigned I = 0; I < NAdds; ++I) {
      AddSubConstraint C;
      C.IsSub = Rng() % 2 != 0;
      C.X = dtv();
      C.Y = dtv();
      C.Z = dtv();
      S.Constraints.addAddSub(C);
    }
    S.Constraints = S.Constraints.canonicalized(Syms, Lat);
    return S;
  }

  DerivedTypeVariable dtv() {
    TypeVariable Base;
    switch (Rng() % 4) {
    case 0:
      Base = TypeVariable::constant(Rng() % 2 == 0 ? Lattice::Top
                                                   : *Lat.lookup("int"));
      break;
    default:
      Base = TypeVariable::var(
          Syms.intern("v" + std::to_string(Rng() % 10)));
      break;
    }
    std::vector<Label> Word;
    unsigned Len = Rng() % 4;
    for (unsigned I = 0; I < Len; ++I) {
      switch (Rng() % 5) {
      case 0:
        Word.push_back(Label::in(Rng() % 4));
        break;
      case 1:
        Word.push_back(Label::out(Rng() % 2));
        break;
      case 2:
        Word.push_back(Label::load());
        break;
      case 3:
        Word.push_back(Label::store());
        break;
      default:
        Word.push_back(Label::field(8 << (Rng() % 3),
                                    static_cast<int32_t>(Rng() % 64) - 8));
        break;
      }
    }
    return DerivedTypeVariable(Base, std::move(Word));
  }

  std::mt19937 Rng;
  SymbolTable &Syms;
  const Lattice &Lat;
};

class SchemeCodecTest : public ::testing::Test {
protected:
  SchemeCodecTest() : Lat(makeDefaultLattice()) {}
  SymbolTable Syms;
  Lattice Lat;
};

} // namespace

TEST_F(SchemeCodecTest, RoundTripIsExactOverRandomSchemes) {
  for (uint32_t Seed = 0; Seed < 50; ++Seed) {
    RandomSchemeGen Gen(Seed, Syms, Lat);
    TypeScheme S = Gen.scheme();
    std::string Payload = encodeScheme(S, Syms, Lat);

    // Decode into the SAME table: bit-exact reproduction.
    auto Back = decodeScheme(Payload, Syms, Lat);
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed;
    EXPECT_EQ(Back->ProcVar, S.ProcVar) << "seed " << Seed;
    EXPECT_EQ(Back->Existentials, S.Existentials) << "seed " << Seed;
    EXPECT_EQ(Back->Constraints.subtypes(), S.Constraints.subtypes());
    EXPECT_EQ(Back->Constraints.vars(), S.Constraints.vars());
    EXPECT_EQ(Back->str(Syms, Lat), S.str(Syms, Lat)) << "seed " << Seed;

    // Decode into a FRESH table: same rendered report (ids are free to
    // differ; names must not).
    SymbolTable Fresh;
    auto Ported = decodeScheme(Payload, Fresh, Lat);
    ASSERT_TRUE(Ported.has_value()) << "seed " << Seed;
    EXPECT_EQ(Ported->str(Fresh, Lat), S.str(Syms, Lat)) << "seed " << Seed;

    // Determinism: identical schemes encode to identical bytes.
    EXPECT_EQ(Payload, encodeScheme(*Back, Syms, Lat)) << "seed " << Seed;
  }
}

TEST_F(SchemeCodecTest, AgreesWithLegacyTextSerialization) {
  // The binary codec replaced the line-oriented text format; prove they
  // describe the same scheme: text-round-trip and binary-round-trip of
  // the same scheme render identically.
  for (uint32_t Seed = 100; Seed < 140; ++Seed) {
    RandomSchemeGen Gen(Seed, Syms, Lat);
    TypeScheme S = Gen.scheme();

    std::string Text = serializeSchemeText(S, Syms, Lat);
    auto FromText = parseSchemeText(Text, Syms, Lat);
    ASSERT_TRUE(FromText.has_value()) << "seed " << Seed;

    auto FromBinary = decodeScheme(encodeScheme(S, Syms, Lat), Syms, Lat);
    ASSERT_TRUE(FromBinary.has_value()) << "seed " << Seed;

    EXPECT_EQ(FromBinary->str(Syms, Lat), FromText->str(Syms, Lat))
        << "seed " << Seed;
  }
}

TEST_F(SchemeCodecTest, RejectsTruncationsWithoutCrashing) {
  RandomSchemeGen Gen(7, Syms, Lat);
  TypeScheme S = Gen.scheme();
  std::string Payload = encodeScheme(S, Syms, Lat);
  ASSERT_GT(Payload.size(), 4u);
  // Every proper prefix must be rejected (the format has no valid proper
  // prefixes: trailing truncation always clips a counted field).
  for (size_t Len = 0; Len < Payload.size(); ++Len) {
    auto R = decodeScheme(std::string_view(Payload).substr(0, Len), Syms, Lat);
    EXPECT_FALSE(R.has_value()) << "prefix length " << Len;
  }
  // Trailing garbage is corruption too.
  EXPECT_FALSE(decodeScheme(Payload + "x", Syms, Lat).has_value());
}

TEST_F(SchemeCodecTest, SurvivesByteFlipFuzzing) {
  // Flip every byte through several values; decode must never crash and
  // never mis-render: either nullopt or a well-formed scheme.
  RandomSchemeGen Gen(11, Syms, Lat);
  TypeScheme S = Gen.scheme();
  std::string Payload = encodeScheme(S, Syms, Lat);
  size_t Accepted = 0, Rejected = 0;
  for (size_t Pos = 0; Pos < Payload.size(); ++Pos) {
    for (uint8_t Delta : {1, 0x7f, 0x80, 0xff}) {
      std::string Mut = Payload;
      Mut[Pos] = static_cast<char>(static_cast<uint8_t>(Mut[Pos]) ^ Delta);
      auto R = decodeScheme(Mut, Syms, Lat);
      if (R.has_value()) {
        ++Accepted;
        // Whatever decoded must re-encode (i.e. be internally coherent).
        EXPECT_FALSE(encodeScheme(*R, Syms, Lat).empty());
      } else {
        ++Rejected;
      }
    }
  }
  // Plenty of flips must be caught (out-of-range indices, bad label kinds,
  // clipped counts); some — e.g. inside name bytes — legitimately decode
  // to a different valid scheme.
  EXPECT_GT(Rejected, 0u);
  EXPECT_GT(Accepted + Rejected, 4 * Payload.size() - 1);
}

TEST_F(SchemeCodecTest, RejectsWrongPayloadVersion) {
  RandomSchemeGen Gen(3, Syms, Lat);
  std::string Payload = encodeScheme(Gen.scheme(), Syms, Lat);
  ASSERT_EQ(static_cast<unsigned>(Payload[0]), kSchemePayloadVersion);
  Payload[0] = static_cast<char>(kSchemePayloadVersion + 1);
  EXPECT_FALSE(decodeScheme(Payload, Syms, Lat).has_value());
  EXPECT_FALSE(decodeScheme("", Syms, Lat).has_value());
}

TEST_F(SchemeCodecTest, RejectsUnknownLatticeConstants) {
  // A payload referencing a lattice constant the current lattice does not
  // know is corrupt relative to this session — reject, do not guess.
  TypeScheme S;
  S.ProcVar = TypeVariable::var(Syms.intern("F"));
  S.Constraints.addSubtype(
      DerivedTypeVariable(TypeVariable::var(Syms.intern("x"))),
      DerivedTypeVariable(TypeVariable::constant(*Lat.lookup("int"))));
  std::string Payload = encodeScheme(S, Syms, Lat);

  LatticeBuilder B;
  B.add("unrelated", Lattice::Top);
  Lattice Tiny;
  std::string Err;
  ASSERT_TRUE(B.build(Tiny, Err)) << Err;
  SymbolTable Fresh;
  EXPECT_FALSE(decodeScheme(Payload, Fresh, Tiny).has_value());
}

TEST_F(SchemeCodecTest, StructuralHashIsOrderAndTableIndependent) {
  ConstraintSet A, B;
  auto V = [&](const char *N) {
    return DerivedTypeVariable(TypeVariable::var(Syms.intern(N)));
  };
  A.addSubtype(V("a"), V("b"));
  A.addSubtype(V("c"), V("d"));
  B.addSubtype(V("c"), V("d"));
  B.addSubtype(V("a"), V("b"));
  EXPECT_EQ(constraintSetHash(A, Syms, Lat), constraintSetHash(B, Syms, Lat));

  // Same structure built over a table with shifted ids: same hash.
  SymbolTable Other;
  for (int I = 0; I < 37; ++I)
    Other.intern("pad" + std::to_string(I));
  ConstraintSet C;
  auto W = [&](const char *N) {
    return DerivedTypeVariable(TypeVariable::var(Other.intern(N)));
  };
  C.addSubtype(W("a"), W("b"));
  C.addSubtype(W("c"), W("d"));
  EXPECT_EQ(constraintSetHash(A, Syms, Lat),
            constraintSetHash(C, Other, Lat));

  // Different structure: different hash.
  ConstraintSet D;
  D.addSubtype(V("a"), V("b"));
  EXPECT_NE(constraintSetHash(A, Syms, Lat), constraintSetHash(D, Syms, Lat));

  // Canonical order is content-determined: both insertion orders
  // canonicalize to the same sequence.
  ConstraintSet CanonA = A.canonicalized(Syms, Lat);
  ConstraintSet CanonB = B.canonicalized(Syms, Lat);
  EXPECT_EQ(CanonA.subtypes(), CanonB.subtypes());
  // Idempotent: canonicalizing a canonical set is the identity.
  EXPECT_EQ(CanonA.canonicalized(Syms, Lat).subtypes(), CanonA.subtypes());
}

TEST_F(SchemeCodecTest, SchemeHashCoversAllParts) {
  RandomSchemeGen Gen(21, Syms, Lat);
  TypeScheme S = Gen.scheme();
  Hash128 H0 = schemeStructuralHash(S, Syms, Lat);

  TypeScheme Renamed = S;
  Renamed.ProcVar = TypeVariable::var(Syms.intern("someOtherProc"));
  EXPECT_NE(schemeStructuralHash(Renamed, Syms, Lat), H0);

  TypeScheme MoreExist = S;
  MoreExist.Existentials.push_back(TypeVariable::var(Syms.intern("τ$x$99")));
  EXPECT_NE(schemeStructuralHash(MoreExist, Syms, Lat), H0);

  TypeScheme MoreCons = S;
  MoreCons.Constraints.addVar(
      DerivedTypeVariable(TypeVariable::var(Syms.intern("fresh_var"))));
  EXPECT_NE(schemeStructuralHash(MoreCons, Syms, Lat), H0);
}

TEST_F(SchemeCodecTest, GenResultRoundTripIsExact) {
  for (uint32_t Seed = 200; Seed < 230; ++Seed) {
    RandomSchemeGen Gen(Seed, Syms, Lat);
    // A generation result's constraint set is stored canonical, exactly
    // like the random scheme generator produces.
    ConstraintSet C = Gen.scheme().Constraints;
    Hash128 SetHash = canonicalSetHash(C, Syms, Lat);
    std::vector<TypeVariable> Interesting{
        TypeVariable::var(Syms.intern("g!zeta")),
        TypeVariable::var(Syms.intern("g!alpha"))};
    std::vector<TypeVariable> Callsites{
        TypeVariable::var(Syms.intern("f!callee@9")),
        TypeVariable::var(Syms.intern("f!callee@3"))};
    std::string Payload =
        encodeGenResult(C, SetHash, Interesting, Callsites, Syms, Lat);

    // Interesting arrives unordered from an unordered_set: any input
    // permutation must encode to identical bytes.
    std::vector<TypeVariable> Reversed(Interesting.rbegin(),
                                       Interesting.rend());
    EXPECT_EQ(Payload,
              encodeGenResult(C, SetHash, Reversed, Callsites, Syms, Lat))
        << "seed " << Seed;

    // Decode into the SAME table: bit-exact set, order included.
    auto Back = decodeGenResult(Payload, Syms, Lat);
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed;
    EXPECT_EQ(Back->SetHash, SetHash) << "seed " << Seed;
    EXPECT_EQ(Back->C.subtypes(), C.subtypes()) << "seed " << Seed;
    EXPECT_EQ(Back->C.vars(), C.vars()) << "seed " << Seed;
    EXPECT_EQ(Back->C.str(Syms, Lat), C.str(Syms, Lat)) << "seed " << Seed;
    ASSERT_EQ(Back->Interesting.size(), 2u);
    EXPECT_EQ(Syms.name(Back->Interesting[0].symbol()), "g!alpha");
    EXPECT_EQ(Syms.name(Back->Interesting[1].symbol()), "g!zeta");
    // Callsite order (generation order) is preserved verbatim.
    ASSERT_EQ(Back->Callsites.size(), 2u);
    EXPECT_EQ(Syms.name(Back->Callsites[0].symbol()), "f!callee@9");
    EXPECT_EQ(Syms.name(Back->Callsites[1].symbol()), "f!callee@3");

    // Decode into a FRESH table: same rendered set, callsite names
    // interned (the whole reason the payload carries them).
    SymbolTable Fresh;
    auto Ported = decodeGenResult(Payload, Fresh, Lat);
    ASSERT_TRUE(Ported.has_value()) << "seed " << Seed;
    EXPECT_EQ(Ported->C.str(Fresh, Lat), C.str(Syms, Lat)) << "seed " << Seed;
    SymbolId Sym = 0;
    EXPECT_TRUE(Fresh.lookup("f!callee@9", Sym));
  }
}

TEST_F(SchemeCodecTest, GenResultRejectsTruncationsAndTrailingBytes) {
  RandomSchemeGen Gen(13, Syms, Lat);
  ConstraintSet C = Gen.scheme().Constraints;
  std::string Payload = encodeGenResult(C, canonicalSetHash(C, Syms, Lat),
                                        {}, {}, Syms, Lat);
  ASSERT_GT(Payload.size(), 4u);
  for (size_t Len = 0; Len < Payload.size(); ++Len) {
    EXPECT_FALSE(
        decodeGenResult(std::string_view(Payload).substr(0, Len), Syms, Lat)
            .has_value())
        << "prefix length " << Len;
  }
  EXPECT_FALSE(decodeGenResult(Payload + "x", Syms, Lat).has_value());
}

TEST_F(SchemeCodecTest, GenResultSurvivesByteFlipFuzzing) {
  RandomSchemeGen Gen(17, Syms, Lat);
  ConstraintSet C = Gen.scheme().Constraints;
  std::string Payload =
      encodeGenResult(C, canonicalSetHash(C, Syms, Lat),
                      {TypeVariable::var(Syms.intern("g!x"))},
                      {TypeVariable::var(Syms.intern("f!g@1"))}, Syms, Lat);
  size_t Rejected = 0;
  for (size_t Pos = 0; Pos < Payload.size(); ++Pos) {
    for (uint8_t Delta : {1, 0x7f, 0x80, 0xff}) {
      std::string Mut = Payload;
      Mut[Pos] = static_cast<char>(static_cast<uint8_t>(Mut[Pos]) ^ Delta);
      auto R = decodeGenResult(Mut, Syms, Lat);
      if (!R.has_value())
        ++Rejected;
      // Accepted mutations (e.g. flips inside name bytes or the stored
      // hash) must still have produced a coherent value — rendering must
      // not crash.
      else
        EXPECT_FALSE(R->C.size() > 0 && R->C.str(Syms, Lat).empty());
    }
  }
  EXPECT_GT(Rejected, 0u);
}

namespace {

/// Transcodes an inline payload to pool mode, appending each distinct
/// name to \p PoolNames (store flush order: first use assigns the id).
std::string toPoolMode(std::string_view Payload,
                       std::vector<std::string> &PoolNames) {
  auto Pooled = transcodeNamesToPool(Payload, [&](std::string_view N) {
    for (size_t I = 0; I < PoolNames.size(); ++I)
      if (PoolNames[I] == N)
        return static_cast<uint32_t>(I);
    PoolNames.emplace_back(N);
    return static_cast<uint32_t>(PoolNames.size() - 1);
  });
  EXPECT_TRUE(Pooled.has_value());
  return Pooled ? *Pooled : std::string();
}

/// Builds the pool id -> (SymbolId, LatticeElem+1) translation arrays the
/// way SummaryCache::poolBinding does at segment-open.
struct TestBinding {
  std::vector<uint32_t> SymIds, LatElems;
  TestBinding(const std::vector<std::string> &PoolNames, SymbolTable &Syms,
              const Lattice &Lat) {
    for (const std::string &N : PoolNames) {
      SymIds.push_back(Syms.intern(N));
      std::optional<LatticeElem> E = Lat.lookup(N);
      LatElems.push_back(E ? static_cast<uint32_t>(*E) + 1 : 0);
    }
  }
  PoolBindingView view() const {
    PoolBindingView V;
    V.SymIds = SymIds.data();
    V.LatElems = LatElems.data();
    V.Size = SymIds.size();
    return V;
  }
};

} // namespace

TEST_F(SchemeCodecTest, ValidateGatesEveryKindAndEveryTruncation) {
  // validatePayload is the single segment-open gate for all three payload
  // kinds: every encoder output passes, and no proper prefix or extended
  // payload does (sections must exactly tile the length).
  RandomSchemeGen Gen(23, Syms, Lat);
  TypeScheme S = Gen.scheme();
  Sketch Sk;
  std::vector<std::string> Payloads = {
      encodeScheme(S, Syms, Lat),
      encodeGenResult(S.Constraints,
                      canonicalSetHash(S.Constraints, Syms, Lat),
                      {TypeVariable::var(Syms.intern("g!i"))},
                      {TypeVariable::var(Syms.intern("f!c@2"))}, Syms, Lat),
      encodeSketchBundle({{TypeVariable::var(Syms.intern("F")), &Sk}}, Syms,
                         Lat)};
  for (const std::string &P : Payloads) {
    EXPECT_TRUE(validatePayload(P, 0)) << "kind byte "
                                       << static_cast<unsigned>(P[0]);
    for (size_t Len = 0; Len < P.size(); ++Len)
      EXPECT_FALSE(validatePayload(std::string_view(P).substr(0, Len), 0))
          << "prefix length " << Len;
    EXPECT_FALSE(validatePayload(P + "x", 0));
  }
}

TEST_F(SchemeCodecTest, PoolModeRoundTripsAndRejectsOutOfRangePoolIds) {
  for (uint32_t Seed = 300; Seed < 320; ++Seed) {
    RandomSchemeGen Gen(Seed, Syms, Lat);
    TypeScheme S = Gen.scheme();
    std::string Inline = encodeScheme(S, Syms, Lat);
    std::vector<std::string> PoolNames;
    std::string Pooled = toPoolMode(Inline, PoolNames);
    ASSERT_FALSE(Pooled.empty()) << "seed " << Seed;

    // Pool ids range over [0, PoolNames.size()): exactly that size
    // validates; any smaller pool makes some id dangle and must reject.
    EXPECT_TRUE(validatePayload(Pooled, PoolNames.size())) << "seed " << Seed;
    if (!PoolNames.empty())
      EXPECT_FALSE(validatePayload(Pooled, PoolNames.size() - 1))
          << "seed " << Seed;
    EXPECT_FALSE(validatePayload(Pooled, 0) && !PoolNames.empty());

    // The untrusted decoder never accepts pool mode (pool-mode payloads
    // only exist inside a store, whose probes run the trusted path).
    EXPECT_FALSE(decodeScheme(Pooled, Syms, Lat).has_value());

    // Trusted decode through the translation table renders identically
    // to the inline payload — in the encoding table and in a fresh one.
    TestBinding B(PoolNames, Syms, Lat);
    PoolBindingView V = B.view();
    auto Back = decodeSchemeTrusted(Pooled, Syms, Lat, &V);
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed;
    EXPECT_EQ(Back->str(Syms, Lat), S.str(Syms, Lat)) << "seed " << Seed;

    SymbolTable Fresh;
    TestBinding FB(PoolNames, Fresh, Lat);
    PoolBindingView FV = FB.view();
    auto Ported = decodeSchemeTrusted(Pooled, Fresh, Lat, &FV);
    ASSERT_TRUE(Ported.has_value()) << "seed " << Seed;
    EXPECT_EQ(Ported->str(Fresh, Lat), S.str(Syms, Lat)) << "seed " << Seed;
  }
}

TEST_F(SchemeCodecTest, PoolModePayloadSurvivesByteFlipFuzzing) {
  // The store's contract: a record only reaches a trusted decoder after
  // validatePayload accepts it against the live pool size. Flip every
  // byte of a pool-mode gen payload: whatever still validates must
  // trusted-decode without crashing or reading out of bounds, and
  // plenty of flips (offsets, counts, pool ids) must be caught.
  RandomSchemeGen Gen(29, Syms, Lat);
  ConstraintSet C = Gen.scheme().Constraints;
  std::string Inline =
      encodeGenResult(C, canonicalSetHash(C, Syms, Lat),
                      {TypeVariable::var(Syms.intern("g!y"))},
                      {TypeVariable::var(Syms.intern("f!h@4"))}, Syms, Lat);
  std::vector<std::string> PoolNames;
  std::string Pooled = toPoolMode(Inline, PoolNames);
  ASSERT_TRUE(validatePayload(Pooled, PoolNames.size()));
  TestBinding B(PoolNames, Syms, Lat);
  PoolBindingView V = B.view();

  size_t Rejected = 0, Accepted = 0;
  for (size_t Pos = 0; Pos < Pooled.size(); ++Pos) {
    for (uint8_t Delta : {1, 0x7f, 0x80, 0xff}) {
      std::string Mut = Pooled;
      Mut[Pos] = static_cast<char>(static_cast<uint8_t>(Mut[Pos]) ^ Delta);
      if (!validatePayload(Mut, PoolNames.size())) {
        ++Rejected;
        continue;
      }
      ++Accepted;
      auto R = decodeGenResultTrusted(Mut, Syms, Lat, &V);
      if (R)
        EXPECT_FALSE(R->C.size() > 0 && R->C.str(Syms, Lat).empty());
      auto M = decodeGenResultMetaTrusted(Mut, Syms, Lat, &V);
      if (M)
        EXPECT_LE(M->ConstraintCount, Mut.size());
    }
  }
  EXPECT_GT(Rejected, 0u);
  EXPECT_EQ(Accepted + Rejected, 4 * Pooled.size());

  // Truncations of the pool-mode payload are all caught by validation.
  for (size_t Len = 0; Len < Pooled.size(); ++Len)
    EXPECT_FALSE(validatePayload(std::string_view(Pooled).substr(0, Len),
                                 PoolNames.size()))
        << "prefix length " << Len;
}

TEST_F(SchemeCodecTest, PayloadKindsAreMutuallyUnmistakable) {
  // The three payload kinds carry distinct first bytes: decoding one kind
  // as another must reject cleanly, never mis-materialize.
  RandomSchemeGen Gen(19, Syms, Lat);
  TypeScheme S = Gen.scheme();
  std::string SchemePayload = encodeScheme(S, Syms, Lat);
  std::string GenPayload =
      encodeGenResult(S.Constraints,
                      canonicalSetHash(S.Constraints, Syms, Lat), {}, {},
                      Syms, Lat);
  Sketch Sk;
  std::string BundlePayload = encodeSketchBundle(
      {{TypeVariable::var(Syms.intern("F")), &Sk}}, Syms, Lat);

  EXPECT_FALSE(decodeGenResult(SchemePayload, Syms, Lat).has_value());
  EXPECT_FALSE(decodeGenResult(BundlePayload, Syms, Lat).has_value());
  EXPECT_FALSE(decodeScheme(GenPayload, Syms, Lat).has_value());
  EXPECT_FALSE(decodeScheme(BundlePayload, Syms, Lat).has_value());
  EXPECT_FALSE(decodeSketchBundle(GenPayload, Syms, Lat).has_value());
  EXPECT_FALSE(decodeSketchBundle(SchemePayload, Syms, Lat).has_value());
}
