//===- ShapeGraphTest.cpp - Algorithm E.1 shape inference tests ------------===//

#include "core/ConstraintParser.h"
#include "core/ShapeGraph.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class ShapeTest : public ::testing::Test {
protected:
  ShapeTest() : Lat(makeDefaultLattice()), Parser(Syms, Lat) {}

  ConstraintSet parse(const std::string &Text) {
    auto C = Parser.parse(Text);
    if (!C) {
      ADD_FAILURE() << Parser.error();
      return ConstraintSet();
    }
    return *C;
  }

  uint32_t cls(const ShapeGraph &S, const std::string &Dtv) {
    auto D = Parser.parseDtv(Dtv);
    EXPECT_TRUE(D) << Parser.error();
    return S.classOf(*D);
  }

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
};

} // namespace

TEST_F(ShapeTest, SubtypeConstraintsUnify) {
  ConstraintSet C = parse("a <= b\nb <= c\n");
  ShapeGraph S(C);
  EXPECT_EQ(cls(S, "a"), cls(S, "c"));
}

TEST_F(ShapeTest, CongruenceClosesOverFields) {
  ConstraintSet C = parse(R"(
    a <= b
    a.load.s32@0 <= x
    b.load.s32@0 <= y
  )");
  ShapeGraph S(C);
  EXPECT_EQ(cls(S, "x"), cls(S, "y"));
  EXPECT_EQ(cls(S, "a.load"), cls(S, "b.load"));
}

TEST_F(ShapeTest, LoadStoreChildrenShareShape) {
  ConstraintSet C = parse(R"(
    v <= p.store
    p.load.s32@4 <= w
  )");
  ShapeGraph S(C);
  // S-POINTER twist: p.store and p.load have the same shape, so the .s32@4
  // capability is visible through the store side too.
  EXPECT_NE(cls(S, "p.store.s32@4"), ShapeGraph::NoClass);
  EXPECT_EQ(cls(S, "p.store.s32@4"), cls(S, "w"));
}

TEST_F(ShapeTest, RecursiveStructureFoldsFinitely) {
  // A linked list: t.load.s32@0 <= t rolls the list tail back onto itself.
  ConstraintSet C = parse(R"(
    F.in0 <= t
    t.load.s32@0 <= t
    t.load.s32@4 <= int
  )");
  ShapeGraph S(C);
  EXPECT_EQ(cls(S, "t"), cls(S, "t.load.s32@0"));
  EXPECT_EQ(cls(S, "t.load.s32@0.load.s32@0"), cls(S, "t"));
  EXPECT_NE(cls(S, "t.load.s32@4"), ShapeGraph::NoClass);
}

TEST_F(ShapeTest, CapabilityAbsenceIsReported) {
  ConstraintSet C = parse("a.load <= b\n");
  ShapeGraph S(C);
  EXPECT_NE(cls(S, "a.load"), ShapeGraph::NoClass);
  EXPECT_EQ(cls(S, "a.store.s32@0"), ShapeGraph::NoClass);
  EXPECT_EQ(cls(S, "zz"), ShapeGraph::NoClass);
}

TEST_F(ShapeTest, PointerClassDetection) {
  ConstraintSet C = parse("a.load <= b\nn <= int\n");
  ShapeGraph S(C);
  EXPECT_TRUE(S.isPointerClass(cls(S, "a")));
  EXPECT_FALSE(S.isPointerClass(cls(S, "n")));
}

TEST_F(ShapeTest, UnificationMergesCapabilitiesBothWays) {
  // T-INHERITL/T-INHERITR: both sides of a subtype constraint end up with
  // the union of their capabilities (structural typing).
  ConstraintSet C = parse(R"(
    a <= b
    a.load <= x
    b.s32@0 <= y
  )");
  ShapeGraph S(C);
  EXPECT_NE(cls(S, "b.load"), ShapeGraph::NoClass);
  EXPECT_NE(cls(S, "a.s32@0"), ShapeGraph::NoClass);
}

TEST_F(ShapeTest, VarDeclarationsCreateCapabilities) {
  ConstraintSet C = parse("var F.in0.load\n");
  ShapeGraph S(C);
  EXPECT_NE(cls(S, "F.in0.load"), ShapeGraph::NoClass);
  EXPECT_NE(cls(S, "F.in0"), ShapeGraph::NoClass);
}
