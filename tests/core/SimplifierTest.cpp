//===- SimplifierTest.cpp - Type-scheme inference (§5) tests ----------------===//

#include "core/ConstraintParser.h"
#include "core/Simplifier.h"
#include "core/Solver.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class SimplifierTest : public ::testing::Test {
protected:
  SimplifierTest()
      : Lat(makeDefaultLattice()), Parser(Syms, Lat), Simp(Syms, Lat) {}

  ConstraintSet parse(const std::string &Text) {
    auto C = Parser.parse(Text);
    if (!C) {
      ADD_FAILURE() << Parser.error();
      return ConstraintSet();
    }
    return *C;
  }

  TypeVariable var(const std::string &Name) {
    return TypeVariable::var(Syms.intern(Name));
  }

  /// True if the scheme's constraint set (solved again from scratch) still
  /// entails Lhs <= Rhs for DTVs over interesting variables.
  bool schemeDerives(const TypeScheme &S, const std::string &Lhs,
                     const std::string &Rhs) {
    ConstraintGraph G(S.Constraints);
    G.saturate();
    auto L = Parser.parseDtv(Lhs);
    auto R = Parser.parseDtv(Rhs);
    EXPECT_TRUE(L && R) << Parser.error();
    GraphNodeId Ln = G.lookup(*L, Variance::Covariant);
    GraphNodeId Rn = G.lookup(*R, Variance::Covariant);
    if (Ln == ConstraintGraph::NoNode || Rn == ConstraintGraph::NoNode)
      return false;
    for (GraphNodeId N : G.oneReachableFrom(Ln))
      if (N == Rn)
        return true;
    return false;
  }

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
  Simplifier Simp;
};

} // namespace

TEST_F(SimplifierTest, EliminatesLocalChains) {
  // F.in0 flows through locals a, b into the output: the scheme should
  // relate F.in0 to F.out directly, with no existentials.
  ConstraintSet C = parse(R"(
    F.in0 <= a
    a <= b
    b <= F.out
  )");
  TypeScheme S = Simp.simplify(C, var("F"), {});
  EXPECT_TRUE(schemeDerives(S, "F.in0", "F.out"));
  EXPECT_TRUE(S.Existentials.empty())
      << S.str(Syms, Lat);
}

TEST_F(SimplifierTest, KeepsConstantBounds) {
  ConstraintSet C = parse(R"(
    F.in0 <= a
    a <= int
    #SuccessZ <= b
    b <= F.out
  )");
  TypeScheme S = Simp.simplify(C, var("F"), {});
  EXPECT_TRUE(schemeDerives(S, "F.in0", "int"));
  EXPECT_TRUE(schemeDerives(S, "#SuccessZ", "F.out"));
}

TEST_F(SimplifierTest, DropsIrrelevantLocals) {
  // z is local plumbing unconnected to the interface.
  ConstraintSet C = parse(R"(
    F.in0 <= F.out
    z1 <= z2
    z2 <= z1
  )");
  TypeScheme S = Simp.simplify(C, var("F"), {});
  EXPECT_TRUE(S.Existentials.empty());
  EXPECT_EQ(S.Constraints.subtypes().size(), 1u);
}

TEST_F(SimplifierTest, RecursiveTypeKeepsExistential) {
  // The close_last shape (Figure 2): a loop through a local forces one
  // existential variable carrying a recursive constraint.
  ConstraintSet C = parse(R"(
    F.in0 <= t
    t.load.s32@0 <= t
    t.load.s32@4 <= fd
    fd <= int
    fd <= #FileDescriptor
    #SuccessZ <= r
    r <= F.out
  )");
  TypeScheme S = Simp.simplify(C, var("F"), {});
  ASSERT_EQ(S.Existentials.size(), 1u) << S.str(Syms, Lat);
  // The recursive loop survives: some τ with τ.load.s32@0 <= τ.
  std::string Text = S.Constraints.str(Syms, Lat);
  EXPECT_NE(Text.find(".load.s32@0 <= τ"), std::string::npos) << Text;
  EXPECT_TRUE(schemeDerives(S, "#SuccessZ", "F.out"));
}

TEST_F(SimplifierTest, PreservesPointerFlowAcrossInterface) {
  // Figure 4 embedded in a procedure: the relation between the two formals
  // mediated by local aliased pointers must survive simplification.
  ConstraintSet C = parse(R"(
    F.in0 <= x
    F.in1 <= q
    q <= p
    x <= q.store
    p.load <= y
    y <= F.out
  )");
  TypeScheme S = Simp.simplify(C, var("F"), {});
  EXPECT_TRUE(schemeDerives(S, "F.in0", "F.out")) << S.str(Syms, Lat);
}

TEST_F(SimplifierTest, KeepsCapabilitiesOfProcedure) {
  ConstraintSet C = parse(R"(
    F.in0 <= p
    p.load.s32@0 <= r
    r <= F.out
  )");
  TypeScheme S = Simp.simplify(C, var("F"), {});
  bool SawIn = false;
  for (const DerivedTypeVariable &V : S.Constraints.vars())
    if (V.size() >= 1 && V.labels()[0] == Label::in(0))
      SawIn = true;
  EXPECT_TRUE(SawIn) << S.str(Syms, Lat);
}

TEST_F(SimplifierTest, InterestingVariablesSurvive) {
  // A global g must not be renamed away.
  ConstraintSet C = parse(R"(
    F.in0 <= a
    a <= g
  )");
  TypeScheme S = Simp.simplify(C, var("F"), {var("g")});
  EXPECT_TRUE(schemeDerives(S, "F.in0", "g"));
}

TEST_F(SimplifierTest, SchemePrintsReadably) {
  ConstraintSet C = parse("F.in0 <= F.out\n");
  TypeScheme S = Simp.simplify(C, var("F"), {});
  std::string Text = S.str(Syms, Lat);
  EXPECT_NE(Text.find("forall F"), std::string::npos);
  EXPECT_NE(Text.find("F.in0 <= F.out"), std::string::npos);
}

TEST_F(SimplifierTest, AddSubSurvives) {
  ConstraintSet C = parse(R"(
    F.in0 <= a
    add(a, k; z)
    z <= F.out
  )");
  TypeScheme S = Simp.simplify(C, var("F"), {});
  EXPECT_EQ(S.Constraints.addSubs().size(), 1u);
}
