//===- SketchMinimizeTest.cpp - Bisimulation quotient tests ---------------------===//

#include "core/Sketch.h"

#include <gtest/gtest.h>

#include <random>

using namespace retypd;

namespace {

Lattice lat() { return makeDefaultLattice(); }

} // namespace

TEST(SketchMinimize, CollapsesDuplicateLeaves) {
  Lattice L = lat();
  LatticeElem Int = *L.lookup("int");
  Sketch S;
  uint32_t A = S.addNode(Int);
  uint32_t B = S.addNode(Int);
  S.addEdge(S.root(), Label::field(32, 0), A);
  S.addEdge(S.root(), Label::field(32, 4), B);
  Sketch M = S.minimized();
  EXPECT_EQ(M.size(), 2u); // root + one shared int leaf
  EXPECT_TRUE(Sketch::equal(M, S, L));
}

TEST(SketchMinimize, KeepsDistinctMarksApart) {
  Lattice L = lat();
  Sketch S;
  uint32_t A = S.addNode(*L.lookup("int"));
  uint32_t B = S.addNode(*L.lookup("str"));
  S.addEdge(S.root(), Label::field(32, 0), A);
  S.addEdge(S.root(), Label::field(32, 4), B);
  Sketch M = S.minimized();
  EXPECT_EQ(M.size(), 3u);
  EXPECT_TRUE(Sketch::equal(M, S, L));
}

TEST(SketchMinimize, FoldsUnrolledRecursion) {
  // An unrolled list (three explicit cells, last looping) minimizes to the
  // two-state recursive form — the semantic core of the reroll policy
  // (Example G.3).
  Lattice L = lat();
  LatticeElem Int = *L.lookup("int");
  Sketch S;
  uint32_t C1 = S.addNode(), C2 = S.addNode(), C3 = S.addNode();
  uint32_t P1 = S.addNode(Int), P2 = S.addNode(Int), P3 = S.addNode(Int);
  S.addEdge(S.root(), Label::load(), C1);
  S.addEdge(C1, Label::field(32, 0), C2);
  S.addEdge(C1, Label::field(32, 4), P1);
  S.addEdge(C2, Label::field(32, 0), C3);
  S.addEdge(C2, Label::field(32, 4), P2);
  S.addEdge(C3, Label::field(32, 0), C3);
  S.addEdge(C3, Label::field(32, 4), P3);

  // But C1/C2/C3 have no self-edges except C3; bisimulation folds them all
  // onto the looping cell.
  Sketch M = S.minimized();
  EXPECT_EQ(M.size(), 3u) << "root + cell + payload";
  EXPECT_TRUE(Sketch::equal(M, S, L));
}

TEST(SketchMinimize, DropsUnreachableStates) {
  Lattice L = lat();
  Sketch S;
  S.addNode(*L.lookup("int")); // never linked
  Sketch M = S.minimized();
  EXPECT_EQ(M.size(), 1u);
  EXPECT_TRUE(Sketch::equal(M, S, L));
}

TEST(SketchMinimize, IdempotentAndEquivalentOnRandomSketches) {
  Lattice L = lat();
  std::mt19937 Rng(99);
  std::uniform_int_distribution<LatticeElem> Mark(
      0, static_cast<LatticeElem>(L.size() - 1));
  const Label Labels[] = {Label::load(), Label::store(),
                          Label::field(32, 0), Label::field(32, 4)};
  std::uniform_int_distribution<unsigned> PickLabel(0, 3);

  for (int Round = 0; Round < 30; ++Round) {
    Sketch S;
    unsigned N = 1 + Rng() % 6;
    S.node(S.root()).Mark = Mark(Rng);
    for (unsigned I = 1; I < N; ++I)
      S.addNode(Mark(Rng));
    std::uniform_int_distribution<uint32_t> PickNode(0, N - 1);
    for (unsigned E = 0; E < N + 2; ++E)
      S.addEdge(PickNode(Rng), Labels[PickLabel(Rng)], PickNode(Rng));

    Sketch M = S.minimized();
    EXPECT_LE(M.size(), S.size());
    EXPECT_TRUE(Sketch::equal(M, S, L));
    Sketch M2 = M.minimized();
    EXPECT_EQ(M2.size(), M.size());
  }
}
