//===- SketchTest.cpp - Sketch lattice (Figure 18) tests --------------------===//

#include "core/Sketch.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class SketchTest : public ::testing::Test {
protected:
  SketchTest() : Lat(makeDefaultLattice()) {}

  LatticeElem elem(const std::string &N) { return *Lat.lookup(N); }

  /// A sketch with language {ε, .load} and the given marks.
  Sketch loadSketch(LatticeElem RootMark, LatticeElem LoadMark) {
    Sketch S;
    S.node(S.root()).Mark = RootMark;
    uint32_t L = S.addNode(LoadMark);
    S.addEdge(S.root(), Label::load(), L);
    return S;
  }

  /// A recursive list sketch: root -load-> cell, cell -s32@0-> cell,
  /// cell -s32@4-> payload.
  Sketch listSketch(LatticeElem Payload) {
    Sketch S;
    uint32_t Cell = S.addNode();
    uint32_t Pay = S.addNode(Payload);
    S.addEdge(S.root(), Label::load(), Cell);
    S.addEdge(Cell, Label::field(32, 0), Cell);
    S.addEdge(Cell, Label::field(32, 4), Pay);
    return S;
  }

  Lattice Lat;
};

} // namespace

TEST_F(SketchTest, TrivialSketchHasOnlyEpsilon) {
  Sketch S;
  EXPECT_TRUE(S.hasPath({}));
  std::vector<Label> W{Label::load()};
  EXPECT_FALSE(S.hasPath(W));
}

TEST_F(SketchTest, RecursiveLanguageIsInfinite) {
  Sketch S = listSketch(elem("int"));
  std::vector<Label> W{Label::load()};
  for (int I = 0; I < 5; ++I) {
    EXPECT_TRUE(S.hasPath(W));
    W.push_back(Label::field(32, 0));
  }
  W.back() = Label::field(32, 4);
  EXPECT_TRUE(S.hasPath(W));
  EXPECT_EQ(S.markAt(W), elem("int"));
}

TEST_F(SketchTest, MeetUnionsLanguages) {
  Sketch A = loadSketch(Lattice::Top, elem("int"));
  Sketch B;
  uint32_t St = B.addNode(elem("str"));
  B.addEdge(B.root(), Label::store(), St);
  Sketch M = Sketch::meet(A, B, Lat);
  std::vector<Label> L{Label::load()}, S{Label::store()};
  EXPECT_TRUE(M.hasPath(L));
  EXPECT_TRUE(M.hasPath(S));
}

TEST_F(SketchTest, JoinIntersectsLanguages) {
  Sketch A = loadSketch(Lattice::Top, elem("int"));
  Sketch B;
  uint32_t St = B.addNode(elem("str"));
  B.addEdge(B.root(), Label::store(), St);
  Sketch J = Sketch::join(A, B, Lat);
  std::vector<Label> L{Label::load()}, S{Label::store()};
  EXPECT_FALSE(J.hasPath(L));
  EXPECT_FALSE(J.hasPath(S));
  EXPECT_TRUE(J.hasPath({}));
}

TEST_F(SketchTest, MarkCombinationRespectsVariance) {
  // Covariant position (.load): meet takes Λ-meet, join takes Λ-join.
  Sketch A = loadSketch(Lattice::Top, elem("int"));
  Sketch B = loadSketch(Lattice::Top, elem("uint"));
  std::vector<Label> W{Label::load()};
  Sketch M = Sketch::meet(A, B, Lat);
  EXPECT_EQ(M.markAt(W), Lattice::Bottom); // int ∧ uint
  Sketch J = Sketch::join(A, B, Lat);
  EXPECT_EQ(J.markAt(W), elem("num32")); // int ∨ uint
}

TEST_F(SketchTest, ContravariantMarksFlip) {
  Sketch A, B;
  uint32_t Na = A.addNode(elem("int"));
  A.addEdge(A.root(), Label::in(0), Na);
  uint32_t Nb = B.addNode(elem("uint"));
  B.addEdge(B.root(), Label::in(0), Nb);
  std::vector<Label> W{Label::in(0)};
  // .in is contravariant: meet joins the marks, join meets them.
  Sketch M = Sketch::meet(A, B, Lat);
  EXPECT_EQ(M.markAt(W), elem("num32"));
  Sketch J = Sketch::join(A, B, Lat);
  EXPECT_EQ(J.markAt(W), Lattice::Bottom);
}

TEST_F(SketchTest, LeqRequiresLanguageContainment) {
  Sketch A = loadSketch(Lattice::Top, elem("int"));
  Sketch Trivial;
  // A has strictly more capabilities: A ⊑ Trivial.
  EXPECT_TRUE(Sketch::leq(A, Trivial, Lat));
  EXPECT_FALSE(Sketch::leq(Trivial, A, Lat));
}

TEST_F(SketchTest, LeqChecksMarks) {
  Sketch A = loadSketch(Lattice::Top, elem("int"));
  Sketch B = loadSketch(Lattice::Top, elem("num32"));
  EXPECT_TRUE(Sketch::leq(A, B, Lat));  // int <= num32 covariantly
  EXPECT_FALSE(Sketch::leq(B, A, Lat));
}

TEST_F(SketchTest, MeetIsGreatestLowerBound) {
  Sketch A = loadSketch(Lattice::Top, elem("int"));
  Sketch B = loadSketch(elem("LPARAM"), elem("uint"));
  Sketch M = Sketch::meet(A, B, Lat);
  EXPECT_TRUE(Sketch::leq(M, A, Lat));
  EXPECT_TRUE(Sketch::leq(M, B, Lat));
}

TEST_F(SketchTest, JoinIsLeastUpperBound) {
  Sketch A = loadSketch(Lattice::Top, elem("int"));
  Sketch B = loadSketch(elem("LPARAM"), elem("uint"));
  Sketch J = Sketch::join(A, B, Lat);
  EXPECT_TRUE(Sketch::leq(A, J, Lat));
  EXPECT_TRUE(Sketch::leq(B, J, Lat));
}

TEST_F(SketchTest, LatticeLawsOnRecursiveSketches) {
  Sketch A = listSketch(elem("int"));
  Sketch B = listSketch(elem("str"));
  Sketch M = Sketch::meet(A, B, Lat);
  Sketch J = Sketch::join(A, B, Lat);
  EXPECT_TRUE(Sketch::leq(M, A, Lat));
  EXPECT_TRUE(Sketch::leq(A, J, Lat));
  // Idempotence: A ⊓ A = A, A ⊔ A = A.
  EXPECT_TRUE(Sketch::equal(Sketch::meet(A, A, Lat), A, Lat));
  EXPECT_TRUE(Sketch::equal(Sketch::join(A, A, Lat), A, Lat));
  // Commutativity.
  EXPECT_TRUE(Sketch::equal(M, Sketch::meet(B, A, Lat), Lat));
  EXPECT_TRUE(Sketch::equal(J, Sketch::join(B, A, Lat), Lat));
}

TEST_F(SketchTest, AbsorptionLaw) {
  Sketch A = loadSketch(Lattice::Top, elem("int"));
  Sketch B = listSketch(elem("str"));
  // A ⊓ (A ⊔ B) = A and A ⊔ (A ⊓ B) = A.
  EXPECT_TRUE(Sketch::equal(
      Sketch::meet(A, Sketch::join(A, B, Lat), Lat), A, Lat));
  EXPECT_TRUE(Sketch::equal(
      Sketch::join(A, Sketch::meet(A, B, Lat), Lat), A, Lat));
}
