//===- SolverTest.cpp - Sketch solving (Algorithm F.2) tests ----------------===//

#include "core/ConstraintParser.h"
#include "core/Solver.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class SolverTest : public ::testing::Test {
protected:
  SolverTest() : Lat(makeDefaultLattice()), Parser(Syms, Lat), Solver(Lat) {}

  ConstraintSet parse(const std::string &Text) {
    auto C = Parser.parse(Text);
    if (!C) {
      ADD_FAILURE() << Parser.error();
      return ConstraintSet();
    }
    return *C;
  }

  TypeVariable var(const std::string &Name) {
    return TypeVariable::var(Syms.intern(Name));
  }

  std::vector<Label> word(const std::string &Dtv) {
    auto D = Parser.parseDtv(Dtv);
    EXPECT_TRUE(D) << Parser.error();
    return std::vector<Label>(D->labels().begin(), D->labels().end());
  }

  LatticeElem elem(const std::string &N) { return *Lat.lookup(N); }

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
  SketchSolver Solver;
};

} // namespace

// The close_last example of Figure 2 / Figure 5: recursive list argument
// with a tagged int payload, tagged int result.
TEST_F(SolverTest, CloseLastSketch) {
  ConstraintSet C = parse(R"(
    F.in0 <= t
    t.load.s32@0 <= t
    t.load.s32@4 <= fd
    fd <= int
    fd <= #FileDescriptor
    int <= r
    r <= F.out
  )");
  TypeVariable F = var("F");
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{F});
  const Sketch &S = Sol.sketchFor(F);

  // Recursive structure: .in0(.load.s32@0)^n.load.s32@4 exists for all n.
  EXPECT_TRUE(S.hasPath(word("x.in0")));
  EXPECT_TRUE(S.hasPath(word("x.in0.load.s32@4")));
  EXPECT_TRUE(S.hasPath(word("x.in0.load.s32@0.load.s32@4")));
  EXPECT_TRUE(S.hasPath(word("x.in0.load.s32@0.load.s32@0.load.s32@4")));

  // The payload field is marked by the meet of its upper bounds: since
  // #FileDescriptor <= int, that is #FileDescriptor itself.
  EXPECT_EQ(S.markAt(word("x.in0.load.s32@4")), elem("#FileDescriptor"));
  // The output is bounded below by int.
  EXPECT_EQ(S.markAt(word("x.out")), elem("int"));
}

TEST_F(SolverTest, UpperAndLowerBoundsLand) {
  ConstraintSet C = parse(R"(
    F.in0 <= a
    a <= int
    #SuccessZ <= b
    b <= F.out
  )");
  TypeVariable F = var("F");
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{F});
  const Sketch &S = Sol.sketchFor(F);
  // Contravariant position reports the upper bound.
  EXPECT_EQ(S.markAt(word("x.in0")), elem("int"));
  // Covariant position reports the join of lower bounds.
  EXPECT_EQ(S.markAt(word("x.out")), elem("#SuccessZ"));
}

TEST_F(SolverTest, BoundsFlowThroughSaturatedPointers) {
  // Figure 4 second program with a constant source: the bound must reach y
  // through the store/load channel.
  ConstraintSet C = parse(R"(
    q <= p
    #FileDescriptor <= x
    x <= q.store
    p.load <= y
  )");
  TypeVariable Y = var("y");
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{Y});
  EXPECT_EQ(Sol.sketchFor(Y).node(0).Mark, elem("#FileDescriptor"));
}

TEST_F(SolverTest, PointerClassificationFromCapabilities) {
  ConstraintSet C = parse(R"(
    F.in0 <= p
    p.load.s32@0 <= x
  )");
  TypeVariable F = var("F");
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{F});
  const Sketch &S = Sol.sketchFor(F);
  auto In = S.stateAt(word("x.in0"));
  ASSERT_TRUE(In.has_value());
  EXPECT_TRUE(S.node(*In).PointerLike);
}

TEST_F(SolverTest, AddPropagatesPointerness) {
  // z = p + n where p is a pointer: z is a pointer, n an integer.
  ConstraintSet C = parse(R"(
    p.load.s32@0 <= w
    add(p, n; z)
  )");
  TypeVariable N = var("n"), Z = var("z");
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{N, Z});
  EXPECT_TRUE(Sol.sketchFor(Z).node(0).PointerLike);
  EXPECT_TRUE(Sol.sketchFor(N).node(0).IntegerLike);
}

TEST_F(SolverTest, SubOfTwoPointersIsInteger) {
  ConstraintSet C = parse(R"(
    a.load.s32@0 <= w
    b.load.s32@0 <= v
    sub(a, b; d)
  )");
  TypeVariable D = var("d");
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{D});
  EXPECT_TRUE(Sol.sketchFor(D).node(0).IntegerLike);
  EXPECT_FALSE(Sol.sketchFor(D).node(0).PointerLike);
}

TEST_F(SolverTest, IntSeedsComeFromNumericBounds) {
  ConstraintSet C = parse(R"(
    n <= int
    add(n, m; s)
  )");
  TypeVariable M = var("m"), S = var("s");
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{M, S});
  // n is numeric; by itself that says nothing about m or s...
  // ...until z is constrained: int + ? = ? gives no mark without a second
  // operand fact, so only check n's own classification propagated to s when
  // m is also numeric.
  ConstraintSet C2 = parse(R"(
    n <= int
    m <= uint
    add(n, m; s)
  )");
  SketchSolution Sol2 = Solver.solve(C2, std::vector<TypeVariable>{S});
  EXPECT_TRUE(Sol2.sketchFor(S).node(0).IntegerLike);
}

TEST_F(SolverTest, HasCapabilityQueries) {
  ConstraintSet C = parse(R"(
    F.in0 <= p
    x <= p.store
  )");
  ConstraintParser P(Syms, Lat);
  EXPECT_TRUE(SketchSolver::hasCapability(C, *P.parseDtv("F.in0.store")));
  EXPECT_FALSE(SketchSolver::hasCapability(C, *P.parseDtv("F.out")));
}

TEST_F(SolverTest, UnknownVariableGetsTrivialSketch) {
  ConstraintSet C = parse("a <= b\n");
  TypeVariable Z = var("zz");
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{Z});
  EXPECT_EQ(Sol.sketchFor(Z).size(), 1u);
}
