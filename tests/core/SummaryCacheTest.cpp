//===- SummaryCacheTest.cpp - Content-addressed scheme cache tests ------------===//
//
// Covers structural-hash key canonicalization (hit/miss semantics), binary
// codec round trips through the cache, corrupt-entry self-healing,
// sharded-state invariants, file persistence (format v3), stale-version
// rejection, and a many-tiny-SCCs stress run through the parallel pipeline
// with a shared cache.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintParser.h"
#include "core/SummaryCache.h"
#include "support/Stats.h"
#include "frontend/Pipeline.h"
#include "frontend/ReportPrinter.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

using namespace retypd;

namespace {

class SummaryCacheTest : public ::testing::Test {
protected:
  SummaryCacheTest() : Lat(makeDefaultLattice()), Parser(Syms, Lat) {}

  ConstraintSet parse(const std::string &Text) {
    auto C = Parser.parse(Text);
    if (!C) {
      ADD_FAILURE() << Parser.error();
      return ConstraintSet();
    }
    return *C;
  }

  TypeVariable var(const std::string &Name) {
    return TypeVariable::var(Syms.intern(Name));
  }

  /// A small simplified scheme to use as cache content.
  TypeScheme makeScheme(const std::string &Proc) {
    Simplifier Simp(Syms, Lat);
    ConstraintSet C = parse(Proc + ".in0 <= x\nx <= " + Proc + ".out");
    TypeScheme S = Simp.simplify(C, var(Proc), {});
    S.Constraints = S.Constraints.canonicalized(Syms, Lat);
    return S;
  }

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
  SimplifyOptions Opts;
};

} // namespace

TEST_F(SummaryCacheTest, KeyIsContentAddressed) {
  ConstraintSet A = parse("x <= F.out\nF.in0 <= x");
  // Same content, different insertion order: same canonical key.
  ConstraintSet B = parse("F.in0 <= x\nx <= F.out");
  // Different content: different key.
  ConstraintSet C = parse("F.in0 <= x\nx <= F.in0");

  auto Key = [&](const ConstraintSet &S) {
    return SummaryCache::keyFor(S, var("F"), {}, Opts, Syms, Lat);
  };
  EXPECT_EQ(Key(A), Key(B));
  EXPECT_FALSE(Key(A) == Key(C));

  // The interesting set and the simplify options are part of the problem.
  auto KeyI = SummaryCache::keyFor(A, var("F"), {"g0"}, Opts, Syms, Lat);
  EXPECT_FALSE(Key(A) == KeyI);
  SimplifyOptions Other;
  Other.BloatSlack = 99;
  auto KeyO = SummaryCache::keyFor(A, var("F"), {}, Other, Syms, Lat);
  EXPECT_FALSE(Key(A) == KeyO);

  // Interesting-name ORDER must not matter.
  auto KeyAB = SummaryCache::keyFor(A, var("F"), {"g0", "g1"}, Opts, Syms, Lat);
  auto KeyBA = SummaryCache::keyFor(A, var("F"), {"g1", "g0"}, Opts, Syms, Lat);
  EXPECT_EQ(KeyAB, KeyBA);
}

TEST_F(SummaryCacheTest, KeyIsSymbolTableIndependent) {
  // The same structural content must key identically from a symbol table
  // with a completely different id allocation history — that is what
  // makes keys (and cache files) portable across processes.
  ConstraintSet A = parse("F.in0 <= x\nx <= F.out");
  auto K1 = SummaryCache::keyFor(A, var("F"), {}, Opts, Syms, Lat);

  SymbolTable Other;
  for (int I = 0; I < 100; ++I)
    Other.intern("unrelated" + std::to_string(I)); // shift every id
  ConstraintParser P2(Other, Lat);
  auto B = P2.parse("x <= F.out\nF.in0 <= x");
  ASSERT_TRUE(B.has_value());
  auto K2 = SummaryCache::keyFor(
      *B, TypeVariable::var(Other.intern("F")), {}, Opts, Other, Lat);
  EXPECT_EQ(K1, K2);
}

TEST_F(SummaryCacheTest, CacheRoundTripsSchemes) {
  SummaryCache Cache;
  TypeScheme Scheme = makeScheme("F");
  auto K = SummaryCache::keyFor(Scheme.Constraints, var("F"), {}, Opts, Syms,
                                Lat);
  Cache.insert(K, Scheme, Syms, Lat);

  auto Back = Cache.lookup(K, Syms, Lat);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->ProcVar, Scheme.ProcVar);
  EXPECT_EQ(Back->Existentials, Scheme.Existentials);
  // Exact reproduction: text AND internal constraint order.
  EXPECT_EQ(Back->str(Syms, Lat), Scheme.str(Syms, Lat));
  EXPECT_EQ(Back->Constraints.subtypes(), Scheme.Constraints.subtypes());
}

TEST_F(SummaryCacheTest, HitMissAndClear) {
  SummaryCache Cache;
  ConstraintSet C = parse("F.in0 <= F.out");
  auto K = SummaryCache::keyFor(C, var("F"), {}, Opts, Syms, Lat);

  EXPECT_FALSE(Cache.lookup(K, Syms, Lat).has_value());
  EXPECT_EQ(Cache.misses(), 1u);

  Cache.insert(K, makeScheme("F"), Syms, Lat);
  auto Hit = Cache.lookup(K, Syms, Lat);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.size(), 1u);

  // clear() models invalidation: the entry is gone, the next probe misses.
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_FALSE(Cache.lookup(K, Syms, Lat).has_value());
}

TEST_F(SummaryCacheTest, CorruptEntrySelfHeals) {
  SummaryCache Cache;
  ConstraintSet C = parse("F.in0 <= F.out");
  auto K = SummaryCache::keyFor(C, var("F"), {}, Opts, Syms, Lat);

  Cache.insertPayload(K, "not a scheme at all");
  ASSERT_TRUE(Cache.lookupPayload(K).has_value());

  // The decode failure is invisible to the caller: the probe is a miss,
  // never a hit, and the corrupt bytes are dropped on the spot...
  EXPECT_FALSE(Cache.lookup(K, Syms, Lat).has_value());
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.size(), 0u);

  // ...and insert() overwrites rather than keeping stale bytes.
  Cache.insert(K, makeScheme("F"), Syms, Lat);
  Cache.insert(K, makeScheme("G"), Syms, Lat);
  auto Fresh = Cache.lookup(K, Syms, Lat);
  ASSERT_TRUE(Fresh.has_value());
  EXPECT_EQ(Syms.name(Fresh->ProcVar.symbol()), "G");
}

TEST_F(SummaryCacheTest, ContentChangeInvalidatesNaturally) {
  // Content addressing needs no explicit invalidation: touching the
  // constraint set moves the key, so stale entries can never be returned.
  SummaryCache Cache;
  ConstraintSet C1 = parse("F.in0 <= F.out");
  auto K1 = SummaryCache::keyFor(C1, var("F"), {}, Opts, Syms, Lat);
  Cache.insert(K1, makeScheme("F"), Syms, Lat);

  ConstraintSet C2 = parse("F.in0 <= F.out\nint <= F.out");
  auto K2 = SummaryCache::keyFor(C2, var("F"), {}, Opts, Syms, Lat);
  EXPECT_FALSE(K1 == K2);
  EXPECT_FALSE(Cache.lookup(K2, Syms, Lat).has_value());
  EXPECT_TRUE(
      Cache.lookup(K1, Syms, Lat).has_value()); // old entry intact for old key
}

TEST_F(SummaryCacheTest, SaveAndLoadPreserveEntries) {
  namespace fs = std::filesystem;
  fs::path File = fs::temp_directory_path() / "retypd_cache_test.bin";
  fs::remove(File);

  SummaryCache Cache;
  TypeScheme Scheme = makeScheme("F");
  auto K = SummaryCache::keyFor(Scheme.Constraints, var("F"), {}, Opts, Syms,
                                Lat);
  Cache.insert(K, Scheme, Syms, Lat);
  ASSERT_TRUE(Cache.save(File.string()));

  SummaryCache Loaded;
  ASSERT_TRUE(Loaded.load(File.string()));
  EXPECT_EQ(Loaded.size(), 1u);

  // Decode into a FRESH symbol table: payloads carry their own names.
  SymbolTable Fresh;
  auto Hit = Loaded.lookup(K, Fresh, Lat);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->str(Fresh, Lat), Scheme.str(Syms, Lat));

  EXPECT_FALSE(Loaded.load("/nonexistent/path/cache.bin"));
  fs::remove(File);
}

TEST_F(SummaryCacheTest, VersionedHeaderRoundTrip) {
  namespace fs = std::filesystem;
  fs::path File = fs::temp_directory_path() / "retypd_cache_hdr.bin";
  fs::remove(File);

  SummaryCache Cache;
  TypeScheme Scheme = makeScheme("F");
  auto K = SummaryCache::keyFor(Scheme.Constraints, var("F"), {}, Opts, Syms,
                                Lat);
  Cache.insert(K, Scheme, Syms, Lat);
  ASSERT_TRUE(Cache.save(File.string()));

  CacheFileInfo Info = SummaryCache::inspectFile(File.string());
  EXPECT_TRUE(Info.Ok) << Info.Error;
  EXPECT_EQ(Info.FileVersion, kSummaryCacheFileVersion);
  EXPECT_EQ(Info.SchemaVersion, kSummaryCacheSchemaVersion);
  EXPECT_EQ(Info.EntryCount, 1u);
  EXPECT_EQ(Info.PayloadBytes, Cache.payloadBytes());
  // Per-shard tallies agree with the total and with the key's home shard.
  ASSERT_EQ(Info.ShardEntryCounts.size(), SummaryCache::kNumShards);
  size_t Total = 0;
  for (size_t N : Info.ShardEntryCounts)
    Total += N;
  EXPECT_EQ(Total, Info.EntryCount);
  EXPECT_EQ(Info.ShardEntryCounts[SummaryCache::shardOf(K)], 1u);
  fs::remove(File);
}

TEST_F(SummaryCacheTest, LoadRejectsStaleVersionsCleanly) {
  namespace fs = std::filesystem;
  fs::path File = fs::temp_directory_path() / "retypd_cache_stale.bin";

  // The pre-versioning layout ("retypd-summary-cache-v1"), the textual v2
  // format, and any future/mismatched version must be rejected wholesale —
  // a stale cache is a cold cache, not a stream of per-entry decode
  // failures.
  struct StaleCase {
    const char *Header;
    bool ExpectStale;           ///< older than the binary
    bool ExpectNewer;           ///< written by a newer binary
    const char *ExpectedAdvice; ///< direction-aware message fragment
  };
  const StaleCase Cases[] = {
      {"retypd-summary-cache-v1", true, false, "re-run analyze"},
      {"retypd-summary-cache v1 schema 1", true, false, "re-run analyze"},
      {"retypd-summary-cache v2 schema 1", true, false, "re-run analyze"},
      // Same container version, older payload schema (the v2 inline-name
      // payloads of schema 2 vs today's offset-based schema).
      {"retypd-summary-cache v3 schema 2", true, false, "re-run analyze"},
      // Files NEWER than the binary must NOT be flagged stale — a script
      // keying off `stale` would regenerate and destroy a newer binary's
      // valid cache.
      {"retypd-summary-cache v999 schema 2", false, true,
       "newer than this binary"},
      {"retypd-summary-cache v3 schema 999", false, true,
       "newer than this binary"},
      {"some other file entirely", false, false, nullptr},
  };
  for (const StaleCase &Case : Cases) {
    std::ofstream Out(File, std::ios::binary | std::ios::trunc);
    Out << Case.Header << "\n"
        << "entry 00000000000000000000000000000000 5\nhello\n";
    Out.close();

    SummaryCache Cache;
    EXPECT_FALSE(Cache.load(File.string())) << Case.Header;
    EXPECT_EQ(Cache.size(), 0u) << Case.Header;

    CacheFileInfo Info = SummaryCache::inspectFile(File.string());
    EXPECT_FALSE(Info.Ok) << Case.Header;
    EXPECT_FALSE(Info.Error.empty()) << Case.Header;
    EXPECT_EQ(Info.Stale, Case.ExpectStale) << Case.Header;
    EXPECT_EQ(Info.Newer, Case.ExpectNewer) << Case.Header;
    if (Case.ExpectedAdvice) {
      EXPECT_NE(Info.Error.find(Case.ExpectedAdvice), std::string::npos)
          << Case.Header << ": " << Info.Error;
    }
  }
  fs::remove(File);
}

TEST_F(SummaryCacheTest, CorruptByteCountsAreMalformedTailNotACrash) {
  namespace fs = std::filesystem;
  fs::path File = fs::temp_directory_path() / "retypd_cache_corrupt.bin";
  // Entry byte counts are untrusted: a 2^64-1 (or merely huge) count must
  // be treated as a malformed tail by load() AND inspectFile() — not
  // become a throwing allocation or a sign-flipped seek.
  const char *Counts[] = {"18446744073709551615", "9223372036854775808",
                          "999999"};
  for (const char *Count : Counts) {
    std::ofstream Out(File, std::ios::binary | std::ios::trunc);
    Out << "retypd-summary-cache v" << kSummaryCacheFileVersion << " schema "
        << kSummaryCacheSchemaVersion << "\n"
        << "entry 0000000000000000000000000000000f " << Count << "\nx\n";
    Out.close();

    SummaryCache Cache;
    EXPECT_TRUE(Cache.load(File.string())) << Count; // header fine
    EXPECT_EQ(Cache.size(), 0u) << Count;            // entry dropped

    CacheFileInfo Info = SummaryCache::inspectFile(File.string());
    EXPECT_TRUE(Info.Ok) << Count;
    EXPECT_EQ(Info.EntryCount, 0u) << Count; // agrees with load()
    EXPECT_EQ(Info.PayloadBytes, 0u) << Count;
  }
  fs::remove(File);
}

TEST_F(SummaryCacheTest, PruneToBytesDropsLargestFirst) {
  SummaryCache Cache;
  ConstraintSet C = parse("F.in0 <= F.out");
  auto KeyN = [&](const std::string &Name) {
    return SummaryCache::keyFor(C, var(Name), {}, Opts, Syms, Lat);
  };
  Cache.insertPayload(KeyN("A"), std::string(100, 'a'));
  Cache.insertPayload(KeyN("B"), std::string(10, 'b'));
  Cache.insertPayload(KeyN("C"), std::string(50, 'c'));
  EXPECT_EQ(Cache.payloadBytes(), 160u);

  EXPECT_EQ(Cache.pruneToBytes(1000), 0u); // already under budget
  EXPECT_EQ(Cache.pruneToBytes(70), 1u);   // drops the 100-byte entry
  EXPECT_EQ(Cache.payloadBytes(), 60u);
  EXPECT_TRUE(Cache.lookupPayload(KeyN("B")).has_value());
  EXPECT_TRUE(Cache.lookupPayload(KeyN("C")).has_value());
  EXPECT_EQ(Cache.pruneToBytes(0), 2u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST_F(SummaryCacheTest, ConcurrentShardedAccessIsSafe) {
  // Hammer the sharded read/write paths from several threads: concurrent
  // inserts of identical content, shared-lock probes, and decode-on-read.
  // TSan (the check-tier1 preset) vets the locking discipline.
  SummaryCache Cache;
  std::vector<TypeScheme> Schemes;
  std::vector<SummaryKey> Keys;
  for (int I = 0; I < 64; ++I) {
    TypeScheme S = makeScheme("proc" + std::to_string(I));
    Keys.push_back(SummaryCache::keyFor(
        S.Constraints, S.ProcVar, {}, Opts, Syms, Lat));
    Schemes.push_back(std::move(S));
  }
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      for (int Round = 0; Round < 20; ++Round)
        for (size_t I = T; I < Keys.size(); I += 2) {
          if ((Round + T) % 3 == 0)
            Cache.insert(Keys[I], Schemes[I], Syms, Lat);
          else
            Cache.lookup(Keys[I], Syms, Lat);
        }
    });
  for (std::thread &T : Threads)
    T.join();
  // Every inserted entry decodes back to its scheme.
  for (size_t I = 0; I < Keys.size(); ++I) {
    if (auto Hit = Cache.lookup(Keys[I], Syms, Lat)) {
      EXPECT_EQ(Hit->str(Syms, Lat), Schemes[I].str(Syms, Lat));
    }
  }
}

TEST_F(SummaryCacheTest, ManyTinySccsStress) {
  // A module with hundreds of tiny, independent SCCs — the worst case for
  // per-task overhead and the best case for wave width. Everything must
  // solve identically with and without cache, cold and warm, at any job
  // count.
  std::string Asm;
  for (int I = 0; I < 150; ++I) {
    std::string N = std::to_string(I);
    Asm += "fn leaf" + N + ":\n  load eax, [esp+4]\n  ret\n";
    Asm += "fn mid" + N + ":\n  load eax, [esp+4]\n  push eax\n  call leaf" +
           N + "\n  add esp, 4\n  ret\n";
  }
  AsmParser P;
  auto M = P.parse(Asm);
  ASSERT_TRUE(M.has_value()) << P.error();

  SummaryCache Cache;
  auto Run = [&](unsigned Jobs, SummaryCache *UseCache) {
    Module Copy = *M;
    PipelineOptions PO;
    PO.Jobs = Jobs;
    PO.Cache = UseCache;
    Pipeline Pipe(Lat, PO);
    TypeReport R = Pipe.run(Copy);
    EXPECT_EQ(R.Funcs.size(), 300u);
    return renderReport(R, Copy, Lat);
  };

  std::string Baseline = Run(1, nullptr);
  EXPECT_EQ(Baseline, Run(4, nullptr));
  EXPECT_EQ(Baseline, Run(4, &Cache)); // cold
  uint64_t MissesCold = Cache.misses();
  EXPECT_GT(MissesCold, 0u);
  EXPECT_EQ(Baseline, Run(4, &Cache)); // warm
  EXPECT_EQ(Cache.misses(), MissesCold);
  EXPECT_GE(Cache.hits(), 300u);
  EXPECT_EQ(Baseline, Run(2, &Cache)); // warm, different job count
}

//===----------------------------------------------------------------------===//
// Durable artifact store backing (store/Store.h)
//===----------------------------------------------------------------------===//

namespace {

/// Fresh per-test store directory, removed on scope exit.
struct TempStoreDir {
  std::filesystem::path P;
  explicit TempStoreDir(const char *Tag) {
    P = std::filesystem::temp_directory_path() /
        (std::string("retypd_cache_store_") + Tag);
    std::filesystem::remove_all(P);
  }
  ~TempStoreDir() { std::filesystem::remove_all(P); }
  std::string str() const { return P.string(); }
};

} // namespace

TEST_F(SummaryCacheTest, StoreBackedLookupIsZeroCopyAndCountsHits) {
  TempStoreDir Dir("zerocopy");
  TypeScheme Scheme = makeScheme("F");
  auto K = SummaryCache::keyFor(Scheme.Constraints, var("F"), {}, Opts, Syms,
                                Lat);
  {
    SummaryCache Writer;
    ASSERT_TRUE(Writer.openStore(Dir.str()));
    Writer.insert(K, Scheme, Syms, Lat);
    auto Appended = Writer.flushToStore();
    ASSERT_TRUE(Appended.has_value());
    EXPECT_EQ(*Appended, 1u);
    // Re-flushing identical bytes journals nothing.
    auto Again = Writer.flushToStore();
    ASSERT_TRUE(Again.has_value());
    EXPECT_EQ(*Again, 0u);
  }
  // A different cache object (a second process): the in-memory map is
  // empty, so the probe decodes straight out of the mapped store.
  SummaryCache Reader;
  ASSERT_TRUE(Reader.openStore(Dir.str()));
  EXPECT_FALSE(Reader.lookupPayload(K).has_value())
      << "store payloads must not be copied into the memory map";
  EventCounters::reset();
  auto Back = Reader.lookup(K, Syms, Lat);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->str(Syms, Lat), Scheme.str(Syms, Lat));
  EXPECT_EQ(Reader.hits(), 1u);
  EXPECT_EQ(Reader.misses(), 0u);
  EXPECT_EQ(EventCounters::StoreHits.load(), 1u);
  EXPECT_EQ(EventCounters::StorePayloadCopies.load(), 0u)
      << "mmap read path copied payload bytes";
}

TEST_F(SummaryCacheTest, PoolBindingTranslatesStoreNamesOnce) {
  TempStoreDir Dir("poolbind");
  TypeScheme Scheme = makeScheme("F");
  auto K = SummaryCache::keyFor(Scheme.Constraints, var("F"), {}, Opts, Syms,
                                Lat);
  SummaryCache Cache;
  ASSERT_TRUE(Cache.openStore(Dir.str()));
  Cache.insert(K, Scheme, Syms, Lat);
  ASSERT_TRUE(Cache.flushToStore().has_value());
  Cache.clear(); // force every probe through the mapped store

  EventCounters::reset();
  ASSERT_TRUE(Cache.lookup(K, Syms, Lat).has_value());
  uint64_t Binds = EventCounters::PoolBinds.load();
  EXPECT_GT(Binds, 0u) << "first store probe batch-interns the name pool";
  EXPECT_EQ(EventCounters::PoolBindHits.load(), 1u)
      << "flushed payloads must decode in pool name mode";

  // Second probe: the pool grew by nothing, so the translation table is
  // reused as-is — zero per-payload string hashing.
  ASSERT_TRUE(Cache.lookup(K, Syms, Lat).has_value());
  EXPECT_EQ(EventCounters::PoolBinds.load(), Binds)
      << "unchanged pool re-interned names";
  EXPECT_EQ(EventCounters::PoolBindHits.load(), 2u);

  // Compaction carries the pool verbatim (ids preserved): the binding
  // stays valid — no re-interning afterwards either.
  ASSERT_TRUE(Cache.store()->compact().has_value());
  ASSERT_TRUE(Cache.lookup(K, Syms, Lat).has_value());
  EXPECT_EQ(EventCounters::PoolBinds.load(), Binds)
      << "compaction invalidated the pool translation table";
  EXPECT_EQ(EventCounters::PoolBindHits.load(), 3u);

  // A different symbol table needs its own translation (decoded ids are
  // table-relative) and still answers correctly.
  SymbolTable Other;
  auto FromOther = Cache.lookup(K, Other, Lat);
  ASSERT_TRUE(FromOther.has_value());
  EXPECT_EQ(FromOther->str(Other, Lat), Scheme.str(Syms, Lat));
  EXPECT_GT(EventCounters::PoolBinds.load(), Binds);
}

TEST_F(SummaryCacheTest, PayloadReplacementServesTheNewValue) {
  SummaryCache Cache;
  TypeScheme F = makeScheme("F"), G = makeScheme("G");
  auto K = SummaryCache::keyFor(F.Constraints, var("F"), {}, Opts, Syms, Lat);
  Cache.insert(K, F, Syms, Lat);
  ASSERT_TRUE(Cache.lookup(K, Syms, Lat).has_value());
  // Replacing the payload must not serve the previous decoded value.
  Cache.insert(K, G, Syms, Lat);
  auto Back = Cache.lookup(K, Syms, Lat);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->str(Syms, Lat), G.str(Syms, Lat));
}

TEST_F(SummaryCacheTest, CorruptStoreRecordIsAMissNotAPoisoning) {
  TempStoreDir Dir("corrupt");
  TypeScheme Scheme = makeScheme("F");
  auto Good = SummaryCache::keyFor(Scheme.Constraints, var("F"), {}, Opts,
                                   Syms, Lat);
  SummaryKey Bad{0x1234, 0x5678};
  {
    SummaryCache Writer;
    ASSERT_TRUE(Writer.openStore(Dir.str()));
    Writer.insert(Good, Scheme, Syms, Lat);
    Writer.insertPayload(Bad, "not a scheme payload");
    ASSERT_TRUE(Writer.flushToStore().has_value());
  }
  SummaryCache Reader;
  ASSERT_TRUE(Reader.openStore(Dir.str()));
  // The CRC is fine (the garbage was written as-is), but decoding fails:
  // a plain miss, not an error, and the good neighbor still decodes.
  EXPECT_FALSE(Reader.lookup(Bad, Syms, Lat).has_value());
  EXPECT_EQ(Reader.misses(), 1u);
  ASSERT_TRUE(Reader.lookup(Good, Syms, Lat).has_value());
  EXPECT_EQ(Reader.hits(), 1u);
}
