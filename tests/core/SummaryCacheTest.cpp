//===- SummaryCacheTest.cpp - Content-addressed scheme cache tests ------------===//
//
// Covers key canonicalization (hit/miss semantics), serialization round
// trips, invalidation by content and by options, file persistence, and a
// many-tiny-SCCs stress run through the parallel pipeline with a shared
// cache.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintParser.h"
#include "core/SummaryCache.h"
#include "frontend/Pipeline.h"
#include "frontend/ReportPrinter.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace retypd;

namespace {

class SummaryCacheTest : public ::testing::Test {
protected:
  SummaryCacheTest() : Lat(makeDefaultLattice()), Parser(Syms, Lat) {}

  ConstraintSet parse(const std::string &Text) {
    auto C = Parser.parse(Text);
    if (!C) {
      ADD_FAILURE() << Parser.error();
      return ConstraintSet();
    }
    return *C;
  }

  TypeVariable var(const std::string &Name) {
    return TypeVariable::var(Syms.intern(Name));
  }

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
  SimplifyOptions Opts;
};

} // namespace

TEST_F(SummaryCacheTest, KeyIsContentAddressed) {
  ConstraintSet A = parse("x <= F.out\nF.in0 <= x");
  // Same content, different insertion order: same canonical key.
  ConstraintSet B = parse("F.in0 <= x\nx <= F.out");
  // Different content: different key.
  ConstraintSet C = parse("F.in0 <= x\nx <= F.in0");

  auto Key = [&](const ConstraintSet &S) {
    return SummaryCache::keyFor(S, var("F"), {}, Opts, Syms, Lat);
  };
  EXPECT_EQ(Key(A), Key(B));
  EXPECT_FALSE(Key(A) == Key(C));

  // The interesting set and the simplify options are part of the problem.
  auto KeyI = SummaryCache::keyFor(A, var("F"), {"g0"}, Opts, Syms, Lat);
  EXPECT_FALSE(Key(A) == KeyI);
  SimplifyOptions Other;
  Other.BloatSlack = 99;
  auto KeyO = SummaryCache::keyFor(A, var("F"), {}, Other, Syms, Lat);
  EXPECT_FALSE(Key(A) == KeyO);

  // Interesting-name ORDER must not matter.
  auto KeyAB = SummaryCache::keyFor(A, var("F"), {"g0", "g1"}, Opts, Syms, Lat);
  auto KeyBA = SummaryCache::keyFor(A, var("F"), {"g1", "g0"}, Opts, Syms, Lat);
  EXPECT_EQ(KeyAB, KeyBA);
}

TEST_F(SummaryCacheTest, SerializeRoundTripsExactly) {
  Simplifier Simp(Syms, Lat);
  ConstraintSet C = parse(R"(
F.in0 <= a
a.load.s32@0 <= a
a.load.s32@4 <= int
a <= F.out
)");
  TypeScheme Scheme = Simp.simplify(C, var("F"), {});
  Scheme.Constraints = Scheme.Constraints.canonicalized(Syms, Lat);

  std::string Text = SummaryCache::serialize(Scheme, Syms, Lat);
  auto Back = SummaryCache::deserialize(Text, Syms, Lat);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->ProcVar, Scheme.ProcVar);
  EXPECT_EQ(Back->Existentials, Scheme.Existentials);
  // Exact reproduction: text AND internal constraint order.
  EXPECT_EQ(Back->str(Syms, Lat), Scheme.str(Syms, Lat));
  EXPECT_EQ(Back->Constraints.subtypes(), Scheme.Constraints.subtypes());
}

TEST_F(SummaryCacheTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SummaryCache::deserialize("", Syms, Lat).has_value());
  EXPECT_FALSE(SummaryCache::deserialize("nonsense\n", Syms, Lat).has_value());
  EXPECT_FALSE(
      SummaryCache::deserialize("proc F\nno-existentials-line\n", Syms, Lat)
          .has_value());
}

TEST_F(SummaryCacheTest, HitMissAndClear) {
  SummaryCache Cache;
  ConstraintSet C = parse("F.in0 <= F.out");
  auto K = SummaryCache::keyFor(C, var("F"), {}, Opts, Syms, Lat);

  EXPECT_FALSE(Cache.lookup(K).has_value());
  EXPECT_EQ(Cache.misses(), 1u);

  Cache.insert(K, "proc F\nexistentials\n");
  auto Hit = Cache.lookup(K);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.size(), 1u);

  // clear() models invalidation: the entry is gone, the next probe misses.
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_FALSE(Cache.lookup(K).has_value());
}

TEST_F(SummaryCacheTest, CorruptEntrySelfHeals) {
  SummaryCache Cache;
  ConstraintSet C = parse("F.in0 <= F.out");
  auto K = SummaryCache::keyFor(C, var("F"), {}, Opts, Syms, Lat);

  Cache.insert(K, "not a scheme at all");
  auto Hit = Cache.lookup(K);
  ASSERT_TRUE(Hit.has_value());
  ASSERT_FALSE(SummaryCache::deserialize(*Hit, Syms, Lat).has_value());

  // The consumer reports the corruption: the hit is reclassified as a
  // miss and the entry dropped...
  Cache.noteCorrupt(K);
  EXPECT_EQ(Cache.hits(), 0u);   // the bogus hit is taken back
  EXPECT_EQ(Cache.misses(), 1u); // ...and reclassified as a miss
  EXPECT_EQ(Cache.size(), 0u);

  // ...and insert() overwrites rather than keeping stale bytes.
  Cache.insert(K, "proc F\nexistentials\n");
  Cache.insert(K, "proc G\nexistentials\n");
  auto Fresh = Cache.lookup(K);
  ASSERT_TRUE(Fresh.has_value());
  EXPECT_EQ(*Fresh, "proc G\nexistentials\n");
}

TEST_F(SummaryCacheTest, ContentChangeInvalidatesNaturally) {
  // Content addressing needs no explicit invalidation: touching the
  // constraint set moves the key, so stale entries can never be returned.
  SummaryCache Cache;
  ConstraintSet C1 = parse("F.in0 <= F.out");
  auto K1 = SummaryCache::keyFor(C1, var("F"), {}, Opts, Syms, Lat);
  Cache.insert(K1, "proc F\nexistentials\n");

  ConstraintSet C2 = parse("F.in0 <= F.out\nint <= F.out");
  auto K2 = SummaryCache::keyFor(C2, var("F"), {}, Opts, Syms, Lat);
  EXPECT_FALSE(K1 == K2);
  EXPECT_FALSE(Cache.lookup(K2).has_value());
  EXPECT_TRUE(Cache.lookup(K1).has_value()); // old entry intact for old key
}

TEST_F(SummaryCacheTest, SaveAndLoadPreserveEntries) {
  namespace fs = std::filesystem;
  fs::path File = fs::temp_directory_path() / "retypd_cache_test.bin";
  fs::remove(File);

  SummaryCache Cache;
  ConstraintSet C = parse("F.in0 <= F.out");
  auto K = SummaryCache::keyFor(C, var("F"), {}, Opts, Syms, Lat);
  Cache.insert(K, "proc F\nexistentials τ$F$0\nF.in0 <= F.out\n");
  ASSERT_TRUE(Cache.save(File.string()));

  SummaryCache Loaded;
  ASSERT_TRUE(Loaded.load(File.string()));
  EXPECT_EQ(Loaded.size(), 1u);
  auto Hit = Loaded.lookup(K);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, "proc F\nexistentials τ$F$0\nF.in0 <= F.out\n");

  EXPECT_FALSE(Loaded.load("/nonexistent/path/cache.bin"));
  fs::remove(File);
}

TEST_F(SummaryCacheTest, VersionedHeaderRoundTrip) {
  namespace fs = std::filesystem;
  fs::path File = fs::temp_directory_path() / "retypd_cache_hdr.bin";
  fs::remove(File);

  SummaryCache Cache;
  ConstraintSet C = parse("F.in0 <= F.out");
  auto K = SummaryCache::keyFor(C, var("F"), {}, Opts, Syms, Lat);
  Cache.insert(K, "proc F\nexistentials\nF.in0 <= F.out\n");
  ASSERT_TRUE(Cache.save(File.string()));

  CacheFileInfo Info = SummaryCache::inspectFile(File.string());
  EXPECT_TRUE(Info.Ok) << Info.Error;
  EXPECT_EQ(Info.FileVersion, kSummaryCacheFileVersion);
  EXPECT_EQ(Info.SchemaVersion, kSummaryCacheSchemaVersion);
  EXPECT_EQ(Info.EntryCount, 1u);
  EXPECT_EQ(Info.PayloadBytes, Cache.payloadBytes());
  fs::remove(File);
}

TEST_F(SummaryCacheTest, LoadRejectsStaleVersionsCleanly) {
  namespace fs = std::filesystem;
  fs::path File = fs::temp_directory_path() / "retypd_cache_stale.bin";

  // The pre-versioning layout (header "retypd-summary-cache-v1") and any
  // future/mismatched version must be rejected wholesale — a stale cache
  // is a cold cache, not a stream of per-entry parse failures.
  const char *StaleHeaders[] = {
      "retypd-summary-cache-v1",
      "retypd-summary-cache v1 schema 1",
      "retypd-summary-cache v999 schema 1",
      "retypd-summary-cache v2 schema 999",
      "some other file entirely",
  };
  for (const char *Header : StaleHeaders) {
    std::ofstream Out(File, std::ios::binary | std::ios::trunc);
    Out << Header << "\n"
        << "entry 00000000000000000000000000000000 5\nhello\n";
    Out.close();

    SummaryCache Cache;
    EXPECT_FALSE(Cache.load(File.string())) << Header;
    EXPECT_EQ(Cache.size(), 0u) << Header;

    CacheFileInfo Info = SummaryCache::inspectFile(File.string());
    EXPECT_FALSE(Info.Ok) << Header;
    EXPECT_FALSE(Info.Error.empty()) << Header;
  }
  fs::remove(File);
}

TEST_F(SummaryCacheTest, CorruptByteCountsAreMalformedTailNotACrash) {
  namespace fs = std::filesystem;
  fs::path File = fs::temp_directory_path() / "retypd_cache_corrupt.bin";
  // Entry byte counts are untrusted: a 2^64-1 (or merely huge) count must
  // be treated as a malformed tail by load() AND inspectFile() — not
  // become a throwing allocation or a sign-flipped seek.
  const char *Counts[] = {"18446744073709551615", "9223372036854775808",
                          "999999"};
  for (const char *Count : Counts) {
    std::ofstream Out(File, std::ios::binary | std::ios::trunc);
    Out << "retypd-summary-cache v2 schema 1\n"
        << "entry 0000000000000000000000000000000f " << Count << "\nx\n";
    Out.close();

    SummaryCache Cache;
    EXPECT_TRUE(Cache.load(File.string())) << Count; // header fine
    EXPECT_EQ(Cache.size(), 0u) << Count;            // entry dropped

    CacheFileInfo Info = SummaryCache::inspectFile(File.string());
    EXPECT_TRUE(Info.Ok) << Count;
    EXPECT_EQ(Info.EntryCount, 0u) << Count; // agrees with load()
    EXPECT_EQ(Info.PayloadBytes, 0u) << Count;
  }
  fs::remove(File);
}

TEST_F(SummaryCacheTest, PruneToBytesDropsLargestFirst) {
  SummaryCache Cache;
  ConstraintSet C = parse("F.in0 <= F.out");
  auto KeyN = [&](const std::string &Name) {
    return SummaryCache::keyFor(C, var(Name), {}, Opts, Syms, Lat);
  };
  Cache.insert(KeyN("A"), std::string(100, 'a'));
  Cache.insert(KeyN("B"), std::string(10, 'b'));
  Cache.insert(KeyN("C"), std::string(50, 'c'));
  EXPECT_EQ(Cache.payloadBytes(), 160u);

  EXPECT_EQ(Cache.pruneToBytes(1000), 0u); // already under budget
  EXPECT_EQ(Cache.pruneToBytes(70), 1u);   // drops the 100-byte entry
  EXPECT_EQ(Cache.payloadBytes(), 60u);
  EXPECT_TRUE(Cache.lookup(KeyN("B")).has_value());
  EXPECT_TRUE(Cache.lookup(KeyN("C")).has_value());
  EXPECT_EQ(Cache.pruneToBytes(0), 2u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST_F(SummaryCacheTest, ManyTinySccsStress) {
  // A module with hundreds of tiny, independent SCCs — the worst case for
  // per-task overhead and the best case for wave width. Everything must
  // solve identically with and without cache, cold and warm, at any job
  // count.
  std::string Asm;
  for (int I = 0; I < 150; ++I) {
    std::string N = std::to_string(I);
    Asm += "fn leaf" + N + ":\n  load eax, [esp+4]\n  ret\n";
    Asm += "fn mid" + N + ":\n  load eax, [esp+4]\n  push eax\n  call leaf" +
           N + "\n  add esp, 4\n  ret\n";
  }
  AsmParser P;
  auto M = P.parse(Asm);
  ASSERT_TRUE(M.has_value()) << P.error();

  SummaryCache Cache;
  auto Run = [&](unsigned Jobs, SummaryCache *UseCache) {
    Module Copy = *M;
    PipelineOptions PO;
    PO.Jobs = Jobs;
    PO.Cache = UseCache;
    Pipeline Pipe(Lat, PO);
    TypeReport R = Pipe.run(Copy);
    EXPECT_EQ(R.Funcs.size(), 300u);
    return renderReport(R, Copy, Lat);
  };

  std::string Baseline = Run(1, nullptr);
  EXPECT_EQ(Baseline, Run(4, nullptr));
  EXPECT_EQ(Baseline, Run(4, &Cache)); // cold
  uint64_t MissesCold = Cache.misses();
  EXPECT_GT(MissesCold, 0u);
  EXPECT_EQ(Baseline, Run(4, &Cache)); // warm
  EXPECT_EQ(Cache.misses(), MissesCold);
  EXPECT_GE(Cache.hits(), 300u);
  EXPECT_EQ(Baseline, Run(2, &Cache)); // warm, different job count
}
