//===- VerifierTest.cpp - Formation-rule verifier ----------------------------===//
//
// Malformed fixtures for the constraint/sketch verifier, one per
// formation rule: illegal label encodings, dangling base variables,
// out-of-lattice constants and marks, broken canonical order, scheme
// closure escapes, and sketch-graph defects. Also pins the counter
// contract: every top-level check bumps EventCounters::VerifierChecks.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class CoreVerifierTest : public ::testing::Test {
protected:
  CoreVerifierTest() : Lat(makeDefaultLattice()) {}

  TypeVariable tv(std::string_view Name) {
    return TypeVariable::var(Syms.intern(Name));
  }

  DerivedTypeVariable dtv(std::string_view Name,
                          std::vector<Label> Word = {}) {
    return DerivedTypeVariable(tv(Name), std::move(Word));
  }

  /// True when some diagnostic contains \p Needle.
  static bool hasError(const VerifyDiags &D, const std::string &Needle) {
    for (const std::string &E : D.Errors)
      if (E.find(Needle) != std::string::npos)
        return true;
    return false;
  }

  SymbolTable Syms;
  Lattice Lat;
};

TEST_F(CoreVerifierTest, CleanDtvPasses) {
  VerifyDiags D;
  verifyDtv(dtv("f", {Label::in(0), Label::load(), Label::field(32, 4)}),
            Syms, Lat, "t", D);
  EXPECT_TRUE(D.ok()) << D.str();
}

TEST_F(CoreVerifierTest, InvalidBaseVariable) {
  VerifyDiags D;
  verifyDtv(DerivedTypeVariable(TypeVariable()), Syms, Lat, "t", D);
  EXPECT_TRUE(hasError(D, "invalid type variable")) << D.str();
}

TEST_F(CoreVerifierTest, DanglingSymbolReference) {
  VerifyDiags D;
  verifyDtv(DerivedTypeVariable(TypeVariable::var(12345)), Syms, Lat, "t", D);
  EXPECT_TRUE(hasError(D, "references symbol #12345")) << D.str();
}

TEST_F(CoreVerifierTest, ConstantOutsideLattice) {
  VerifyDiags D;
  verifyDtv(DerivedTypeVariable(TypeVariable::constant(9999)), Syms, Lat, "t",
            D);
  EXPECT_TRUE(hasError(D, "lattice element #9999")) << D.str();
}

TEST_F(CoreVerifierTest, LabelKindOutsideSigma) {
  VerifyDiags D;
  verifyDtv(dtv("f", {Label::fromRaw(5ull << 48)}), Syms, Lat, "t", D);
  EXPECT_TRUE(hasError(D, "kind bits 5 outside")) << D.str();
}

TEST_F(CoreVerifierTest, LoadLabelWithGarbageOperandBits) {
  uint64_t Raw = (static_cast<uint64_t>(Label::Kind::Load) << 48) | 7;
  VerifyDiags D;
  verifyDtv(dtv("f", {Label::fromRaw(Raw)}), Syms, Lat, "t", D);
  EXPECT_TRUE(hasError(D, "nonzero operand bits")) << D.str();
}

TEST_F(CoreVerifierTest, InLabelWithGarbageWidthBits) {
  uint64_t Raw =
      (static_cast<uint64_t>(Label::Kind::In) << 48) | (1ull << 32) | 2;
  VerifyDiags D;
  verifyDtv(dtv("f", {Label::fromRaw(Raw)}), Syms, Lat, "t", D);
  EXPECT_TRUE(hasError(D, "nonzero width bits")) << D.str();
}

TEST_F(CoreVerifierTest, ConstraintSetWalksEveryConstraintKind) {
  ConstraintSet C;
  C.addSubtype(dtv("a"), DerivedTypeVariable(TypeVariable::var(777)));
  C.addVar(DerivedTypeVariable(TypeVariable::constant(8888)));
  AddSubConstraint A;
  A.IsSub = false;
  A.X = dtv("x");
  A.Y = DerivedTypeVariable(TypeVariable());
  A.Z = dtv("z");
  C.addAddSub(A);
  VerifyDiags D;
  verifyConstraintSet(C, Syms, Lat, "cs", D);
  EXPECT_TRUE(hasError(D, "subtype #0")) << D.str();
  EXPECT_TRUE(hasError(D, "var #0")) << D.str();
  EXPECT_TRUE(hasError(D, "addsub #0")) << D.str();
}

TEST_F(CoreVerifierTest, CanonicalOrderViolationDetected) {
  // A canonicalized two-constraint set passes; the same constraints
  // appended in the opposite storage order must be flagged.
  ConstraintSet C;
  C.addSubtype(dtv("a"), dtv("b"));
  C.addSubtype(dtv("b"), dtv("c"));
  C.addVar(dtv("a", {Label::load()}));
  C.addVar(dtv("b", {Label::store()}));
  C.canonicalize(Syms, Lat);
  {
    VerifyDiags D;
    verifyCanonicalOrder(C, Syms, Lat, "cs", D);
    EXPECT_TRUE(D.ok()) << D.str();
  }
  ConstraintSet R;
  const auto &Subs = C.subtypes();
  for (size_t I = Subs.size(); I-- > 0;)
    R.appendSubtypeTrusted(Subs[I].Lhs, Subs[I].Rhs);
  VerifyDiags D;
  verifyCanonicalOrder(R, Syms, Lat, "cs", D);
  EXPECT_TRUE(hasError(D, "not in canonical order")) << D.str();
}

TEST_F(CoreVerifierTest, SchemeClosureCatchesEscapes) {
  TypeScheme S;
  S.ProcVar = tv("f");
  S.Constraints.addSubtype(dtv("f", {Label::out()}), dtv("g"));
  std::unordered_set<TypeVariable> None;
  VerifyDiags D;
  verifyScheme(S, Syms, Lat, &None, "scheme", D);
  EXPECT_TRUE(hasError(D, "free type variable 'g' escapes")) << D.str();

  // The same scheme is closed once 'g' is an existential, or an allowed
  // free SCC mate.
  {
    TypeScheme S2 = S;
    S2.Existentials.push_back(tv("g"));
    VerifyDiags D2;
    verifyScheme(S2, Syms, Lat, &None, "scheme", D2);
    EXPECT_TRUE(D2.ok()) << D2.str();
  }
  {
    std::unordered_set<TypeVariable> Mates{tv("g")};
    VerifyDiags D3;
    verifyScheme(S, Syms, Lat, &Mates, "scheme", D3);
    EXPECT_TRUE(D3.ok()) << D3.str();
  }
}

TEST_F(CoreVerifierTest, SchemeHeadMustBeAVariable) {
  TypeScheme S;
  S.ProcVar = TypeVariable::constant(0);
  VerifyDiags D;
  verifyScheme(S, Syms, Lat, nullptr, "scheme", D);
  EXPECT_TRUE(hasError(D, "procedure variable is a type constant"))
      << D.str();
}

TEST_F(CoreVerifierTest, SketchDefectsDetected) {
  Sketch S;
  uint32_t Mid = S.addNode();
  S.addEdge(S.root(), Label::load(), Mid);
  S.node(Mid).Mark = 4242;                    // not a lattice element
  S.addEdge(Mid, Label::store(), 99);         // dangling edge target
  S.node(Mid).Children[Label::fromRaw(7ull << 48)] = S.root(); // bad label
  VerifyDiags D;
  verifySketch(S, Lat, "sk", D);
  EXPECT_TRUE(hasError(D, "mark #4242")) << D.str();
  EXPECT_TRUE(hasError(D, "edge targets node #99")) << D.str();
  EXPECT_TRUE(hasError(D, "edge labeled outside")) << D.str();
}

TEST_F(CoreVerifierTest, UnreachableSketchNodesAreNotInspected) {
  // withChild grafting leaves unreachable residue behind; garbage there
  // is not a formation-rule violation.
  Sketch S;
  uint32_t Orphan = S.addNode();
  S.node(Orphan).Mark = 31337; // would be flagged if visited
  VerifyDiags D;
  verifySketch(S, Lat, "sk", D);
  EXPECT_TRUE(D.ok()) << D.str();
}

TEST_F(CoreVerifierTest, EveryTopLevelCheckBumpsTheCounter) {
  auto Count = [] {
    return EventCounters::VerifierChecks.load(std::memory_order_relaxed);
  };
  VerifyDiags D;
  ConstraintSet C;
  uint64_t C0 = Count();
  verifyConstraintSet(C, Syms, Lat, "t", D);
  EXPECT_EQ(Count(), C0 + 1);
  verifyCanonicalOrder(C, Syms, Lat, "t", D);
  EXPECT_EQ(Count(), C0 + 2);
  Sketch Sk;
  verifySketch(Sk, Lat, "t", D);
  EXPECT_EQ(Count(), C0 + 3);
  TypeScheme S;
  S.ProcVar = tv("f");
  uint64_t Before = Count();
  verifyScheme(S, Syms, Lat, nullptr, "t", D);
  EXPECT_GE(Count(), Before + 1);
}

} // namespace
