//===- ConversionTest.cpp - Sketch → C type policy tests --------------------===//

#include "core/ConstraintParser.h"
#include "core/Solver.h"
#include "ctypes/Conversion.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class ConversionTest : public ::testing::Test {
protected:
  ConversionTest() : Lat(makeDefaultLattice()), Parser(Syms, Lat),
                     Solver(Lat) {}

  ConstraintSet parse(const std::string &Text) {
    auto C = Parser.parse(Text);
    if (!C) {
      ADD_FAILURE() << Parser.error();
      return ConstraintSet();
    }
    return *C;
  }

  /// Solves for F and converts to a function prototype string.
  std::string prototypeFor(const std::string &Constraints,
                           ConversionOptions Opts = ConversionOptions()) {
    ConstraintSet C = parse(Constraints);
    TypeVariable F = TypeVariable::var(Syms.intern("F"));
    SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{F});
    CTypePool Pool;
    CTypeConverter Conv(Pool, Lat, Opts);
    CTypeId Fn = Conv.convertFunction(Sol.sketchFor(F));
    return Pool.prototype(Fn, "F");
  }

  SymbolTable Syms;
  Lattice Lat;
  ConstraintParser Parser;
  SketchSolver Solver;
};

} // namespace

TEST_F(ConversionTest, ScalarRoundTrip) {
  std::string P = prototypeFor(R"(
    F.in0 <= a
    a <= int
    int <= r
    r <= F.out
  )");
  EXPECT_EQ(P, "int F(int)");
}

TEST_F(ConversionTest, PointerParameterWithConst) {
  // Parameter is only loaded through: const pointee (§6.4).
  std::string P = prototypeFor(R"(
    F.in0 <= p
    p.load.s32@0 <= v
    v <= int
  )");
  EXPECT_EQ(P, "void F(const int *)");
}

TEST_F(ConversionTest, PointerParameterMutableWhenStored) {
  std::string P = prototypeFor(R"(
    F.in0 <= p
    v <= p.store.s32@0
    int <= v
  )");
  EXPECT_NE(P.find("int *"), std::string::npos);
  EXPECT_EQ(P.find("const"), std::string::npos);
}

TEST_F(ConversionTest, ConstPolicyCanBeDisabled) {
  ConversionOptions Opts;
  Opts.InferConst = false;
  std::string P = prototypeFor(R"(
    F.in0 <= p
    p.load.s32@0 <= v
    v <= int
  )",
                               Opts);
  EXPECT_EQ(P.find("const"), std::string::npos);
}

TEST_F(ConversionTest, StructWithTwoFields) {
  std::string P = prototypeFor(R"(
    F.in0 <= p
    p.load.s32@0 <= a
    a <= int
    p.load.s32@4 <= b
    b <= uint
  )");
  EXPECT_NE(P.find("Struct_0"), std::string::npos) << P;
}

TEST_F(ConversionTest, RecursiveListBecomesNamedStruct) {
  // The close_last shape: struct LL { struct LL *next; int handle; }.
  ConstraintSet C = parse(R"(
    F.in0 <= t
    t.load.s32@0 <= t
    t.load.s32@4 <= fd
    fd <= int
    fd <= #FileDescriptor
    int <= r
    r <= F.out
  )");
  TypeVariable F = TypeVariable::var(Syms.intern("F"));
  SketchSolution Sol = Solver.solve(C, std::vector<TypeVariable>{F});
  CTypePool Pool;
  CTypeConverter Conv(Pool, Lat);
  CTypeId Fn = Conv.convertFunction(Sol.sketchFor(F));

  std::string Proto = Pool.prototype(Fn, "close_last");
  EXPECT_EQ(Proto, "int close_last(const Struct_0 *)") << Proto;

  std::string Defs = Pool.structDefinitions({Fn});
  // The struct contains a self-referencing pointer field at offset 0 and a
  // tagged int at offset 4, as in Figure 2.
  EXPECT_NE(Defs.find("struct Struct_0 {"), std::string::npos) << Defs;
  EXPECT_NE(Defs.find("Struct_0 *field_0"), std::string::npos) << Defs;
  EXPECT_NE(Defs.find("/*#FileDescriptor*/ field_4"), std::string::npos)
      << Defs;
}

TEST_F(ConversionTest, SemanticTagsAnnotate) {
  std::string P = prototypeFor(R"(
    F.in0 <= a
    a <= #FileDescriptor
    a <= int
  )");
  EXPECT_NE(P.find("/*#FileDescriptor*/"), std::string::npos) << P;
}

TEST_F(ConversionTest, TypedefNamesSurvive) {
  std::string P = prototypeFor(R"(
    F.in0 <= h
    h <= HBRUSH
  )");
  EXPECT_NE(P.find("HBRUSH"), std::string::npos) << P;
}

TEST_F(ConversionTest, MixedPointerIntegerMakesUnion) {
  // A value used both as an int and as a pointer (§2.6 bit twiddling).
  std::string P = prototypeFor(R"(
    F.in0 <= x
    x.load.s32@0 <= v
    x <= int
    add(x, one; y)
    one <= int
    y <= int
  )");
  EXPECT_NE(P.find("union"), std::string::npos) << P;
}

TEST_F(ConversionTest, UnionPolicyCanBeDisabled) {
  ConversionOptions Opts;
  Opts.EmitUnions = false;
  std::string P = prototypeFor(R"(
    F.in0 <= x
    x.load.s32@0 <= v
    x <= int
  )",
                               Opts);
  EXPECT_EQ(P.find("union"), std::string::npos) << P;
}

TEST_F(ConversionTest, IncompatibleScalarBoundsMakeUnion) {
  // x <= str and x <= HANDLE: meet is ⊥ — union of both views.
  std::string P = prototypeFor(R"(
    F.in0 <= x
    x <= str
    x <= HANDLE
  )");
  EXPECT_NE(P.find("union"), std::string::npos) << P;
}

TEST_F(ConversionTest, VoidFunctionWithNoOut) {
  std::string P = prototypeFor("F.in0 <= a\na <= int\n");
  EXPECT_EQ(P, "void F(int)");
}

TEST_F(ConversionTest, MultipleParametersInOrder) {
  std::string P = prototypeFor(R"(
    F.in0 <= a
    a <= int
    F.in1 <= b
    b <= str
    F.in2 <= c
    c <= uint
  )");
  EXPECT_EQ(P, "void F(int, char *, unsigned int)");
}

TEST_F(ConversionTest, PointerToPointer) {
  std::string P = prototypeFor(R"(
    F.in0 <= p
    p.load.s32@0 <= q
    q.load.s32@0 <= v
    v <= int
  )");
  // Read-only at both levels: `const int *const *`.
  EXPECT_EQ(P, "void F(const int *const *)");
}
