//===- MetricsTest.cpp - TIE metric unit tests ---------------------------------===//

#include "eval/Metrics.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class MetricsTest : public ::testing::Test {
protected:
  MetricsTest() : Lat(makeDefaultLattice()), Eval(Lat) {}

  Lattice Lat;
  Evaluator Eval;
  CTypePool P;
};

} // namespace

TEST_F(MetricsTest, IdenticalTypesHaveZeroDistance) {
  CTypeId A = P.intType(32, true);
  CTypeId B = P.intType(32, true);
  EXPECT_EQ(Eval.typeDistance(P, A, P, B), 0);
}

TEST_F(MetricsTest, SignednessMismatchCostsOne) {
  CTypeId A = P.intType(32, true);
  CTypeId B = P.intType(32, false);
  EXPECT_EQ(Eval.typeDistance(P, A, P, B), 1);
}

TEST_F(MetricsTest, PointerVsScalarIsMaximal) {
  CTypeId I = P.intType(32, true);
  CTypeId Ptr = P.pointerTo(I);
  EXPECT_EQ(Eval.typeDistance(P, Ptr, P, I), 4);
}

TEST_F(MetricsTest, PointerDistanceHalvesPointeeDistance) {
  CTypeId A = P.pointerTo(P.intType(32, true));
  CTypeId B = P.pointerTo(P.intType(32, false));
  EXPECT_EQ(Eval.typeDistance(P, A, P, B), 0.5);
}

TEST_F(MetricsTest, UnknownIsHalfway) {
  CTypeId U = P.unknownType();
  CTypeId I = P.intType(32, true);
  EXPECT_EQ(Eval.typeDistance(P, U, P, I), 2);
}

TEST_F(MetricsTest, DistanceIsBounded) {
  // Random-ish structural combos stay within [0, 4].
  CTypeId I = P.intType(32, true);
  CTypeId Ptr2 = P.pointerTo(P.pointerTo(I));
  CType St;
  St.K = CType::Kind::Struct;
  St.Name = "S";
  CTypeId StId = P.make(std::move(St));
  P.get(StId).Fields = {CType::Field{0, I}, CType::Field{4, Ptr2}};
  for (CTypeId A : {I, Ptr2, StId})
    for (CTypeId B : {I, Ptr2, StId}) {
      double D = Eval.typeDistance(P, A, P, B);
      EXPECT_GE(D, 0);
      EXPECT_LE(D, 4);
      if (A == B) {
        EXPECT_EQ(D, 0);
      }
      // Symmetry.
      EXPECT_EQ(D, Eval.typeDistance(P, B, P, A));
    }
}

TEST_F(MetricsTest, IntervalSizeBounds) {
  EXPECT_EQ(Eval.intervalSize(Lattice::Bottom, Lattice::Top), 4);
  LatticeElem Int = *Lat.lookup("int");
  EXPECT_EQ(Eval.intervalSize(Int, Int), 0);
  double D = Eval.intervalSize(Lattice::Bottom, *Lat.lookup("num32"));
  EXPECT_GT(D, 0);
  EXPECT_LT(D, 4);
  // Wider intervals are no smaller.
  double Wider = Eval.intervalSize(Lattice::Bottom, *Lat.lookup("LPARAM"));
  EXPECT_GE(Wider, D);
}

TEST_F(MetricsTest, InconsistentIntervalIsMaximal) {
  EXPECT_EQ(Eval.intervalSize(*Lat.lookup("str"), *Lat.lookup("int")), 4);
}

TEST_F(MetricsTest, SummaryMergeAccumulates) {
  MetricSummary A, B;
  A.Slots = 2;
  A.SumDistance = 1.0;
  A.Conservative = 2;
  B.Slots = 3;
  B.SumDistance = 3.0;
  B.Conservative = 1;
  A.merge(B);
  EXPECT_EQ(A.Slots, 5u);
  EXPECT_DOUBLE_EQ(A.meanDistance(), 0.8);
  EXPECT_DOUBLE_EQ(A.conservativeness(), 0.6);
}

TEST_F(MetricsTest, StructDistanceAveragesFields) {
  CTypeId I = P.intType(32, true);
  CType SA;
  SA.K = CType::Kind::Struct;
  SA.Name = "A";
  CTypeId AId = P.make(std::move(SA));
  P.get(AId).Fields = {CType::Field{0, I}, CType::Field{4, I}};
  CType SB;
  SB.K = CType::Kind::Struct;
  SB.Name = "B";
  CTypeId BId = P.make(std::move(SB));
  P.get(BId).Fields = {CType::Field{0, I}, CType::Field{4, I}};
  EXPECT_EQ(Eval.typeDistance(P, AId, P, BId), 0);

  // Dropping one field costs half of a max-mismatch averaged over fields.
  CType SC;
  SC.K = CType::Kind::Struct;
  SC.Name = "C";
  CTypeId CId = P.make(std::move(SC));
  P.get(CId).Fields = {CType::Field{0, I}};
  double D = Eval.typeDistance(P, AId, P, CId);
  EXPECT_GT(D, 0);
  EXPECT_LE(D, 2);
}
