//===- BackendTest.cpp - Solver-backend seam + cross-validation -----------===//
//
// Coverage for the SolverBackend seam (core/SolverBackend.h):
//
//  - cross-validation racing the retypd and binsub backends over the
//    golden corpus and synthetic modules, with a per-program agreement
//    summary — byte-level where the two algorithms agree, eval/Metrics
//    parity bounds where they legitimately differ;
//  - --jobs byte-identity for the binsub backend under the readiness
//    scheduler (same contract GoldenTest pins for retypd);
//  - backend-keyed caching: a binsub run over a retypd-warmed cache may
//    reuse generation results (backend-independent) but must never replay
//    a retypd scheme or solution — zero false hits;
//  - backend-tagged store records (payload tag bit 0x10) visible to
//    Store::inspect;
//  - SchedulerTest's 12-layer diamond ladder under binsub (ROADMAP open
//    item 4 measurement).
//
//===----------------------------------------------------------------------===//

#include "core/SolverBackend.h"
#include "core/SummaryCache.h"
#include "eval/Metrics.h"
#include "frontend/Pipeline.h"
#include "frontend/ReportPrinter.h"
#include "mir/AsmParser.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace retypd;
namespace fs = std::filesystem;

namespace {

fs::path goldenDir() {
  return fs::path(RETYPD_SOURCE_DIR) / "tests" / "frontend" / "golden";
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In) << "cannot open " << P;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::vector<fs::path> corpus() {
  std::vector<fs::path> Programs;
  for (const auto &Entry : fs::directory_iterator(goldenDir()))
    if (Entry.path().extension() == ".asm")
      Programs.push_back(Entry.path());
  std::sort(Programs.begin(), Programs.end());
  return Programs;
}

Module parseAsm(const std::string &Text) {
  AsmParser Parser;
  auto M = Parser.parse(Text);
  EXPECT_TRUE(M.has_value()) << Parser.error();
  return M ? *M : Module();
}

Module parseProgram(const fs::path &P) { return parseAsm(slurp(P)); }

struct BackendRun {
  std::string Text; ///< rendered report (schemes on)
  TypeReport R;
  Module M; ///< post-run module (interfaces recovered), for scoring
};

BackendRun runBackend(Module M, BackendKind Backend, unsigned Jobs = 1,
                      SummaryCache *Cache = nullptr) {
  Lattice Lat = makeDefaultLattice();
  PipelineOptions Opts;
  Opts.Backend = Backend;
  Opts.Jobs = Jobs;
  Opts.Cache = Cache;
  Pipeline Pipe(Lat, Opts);
  BackendRun Out;
  Out.R = Pipe.run(M);
  ReportPrintOptions Print;
  Print.Schemes = true;
  Out.Text = renderReport(Out.R, M, Lat, Print);
  Out.M = std::move(M);
  return Out;
}

/// The diamond ladder of SchedulerTest: distinct call paths double per
/// layer, the adversarial shape for sketch-join growth (ROADMAP item 4).
std::string diamondAsm(unsigned Layers) {
  std::string Asm = "fn d0:\n  load eax, [esp+4]\n  add eax, 1\n  ret\n";
  for (unsigned I = 1; I <= Layers; ++I) {
    std::string N = std::to_string(I), P = "d" + std::to_string(I - 1);
    Asm += "fn a" + N + ":\n  load eax, [esp+4]\n  push eax\n  call " + P +
           "\n  add esp, 4\n  ret\n";
    Asm += "fn b" + N + ":\n  load eax, [esp+4]\n  push eax\n  call " + P +
           "\n  add esp, 4\n  ret\n";
    Asm += "fn d" + N + ":\n  push " + N + "\n  call a" + N +
           "\n  add esp, 4\n  push " + N + "\n  call b" + N +
           "\n  add esp, 4\n  ret\n";
  }
  return Asm;
}

/// Per-function prototype diff between two runs of the same module.
size_t countPrototypeDiffs(const BackendRun &A, const BackendRun &B,
                           std::string &Summary) {
  size_t Diffs = 0;
  for (uint32_t F = 0; F < A.M.Funcs.size(); ++F) {
    std::string PA = A.R.prototypeOf(F, A.M);
    std::string PB = B.R.prototypeOf(F, B.M);
    if (PA != PB) {
      ++Diffs;
      Summary += "    " + A.M.Funcs[F].Name + ": retypd='" + PA +
                 "' binsub='" + PB + "'\n";
    }
  }
  return Diffs;
}

} // namespace

TEST(BackendTest, RegistryRoundTrips) {
  EXPECT_STREQ(backendName(BackendKind::Retypd), "retypd");
  EXPECT_STREQ(backendName(BackendKind::BinSub), "binsub");
  EXPECT_EQ(parseBackendKind("retypd"), BackendKind::Retypd);
  EXPECT_EQ(parseBackendKind("binsub"), BackendKind::BinSub);
  EXPECT_FALSE(parseBackendKind("binsab").has_value());
  EXPECT_FALSE(parseBackendKind("").has_value());

  SymbolTable Syms;
  Lattice Lat = makeDefaultLattice();
  SimplifyOptions SOpts;
  for (BackendKind K : {BackendKind::Retypd, BackendKind::BinSub}) {
    auto B = makeSolverBackend(K, Syms, Lat, SOpts);
    ASSERT_TRUE(B);
    EXPECT_EQ(B->kind(), K);
    EXPECT_STREQ(B->name(), backendName(K));
  }
}

TEST(BackendTest, ReportsRecordTheBackend) {
  Module M = parseProgram(corpus().front());
  EXPECT_EQ(runBackend(M, BackendKind::Retypd).R.Stats.Backend, "retypd");
  EXPECT_EQ(runBackend(M, BackendKind::BinSub).R.Stats.Backend, "binsub");
}

TEST(BackendTest, CrossValidationGoldenCorpus) {
  // Race the two backends over every golden program and print the
  // agreement report. The two algorithms are different simplification
  // theories — scheme *text* legitimately differs (binsub names its
  // existentials τ$proc$N) — so agreement is measured at the recovered
  // C-prototype level, byte-equal prototype by prototype. On this corpus
  // they agree almost everywhere, and where they don't, every
  // disagreeing function still gets *a* prototype (the divergence is
  // precision, never a dropped result).
  size_t Identical = 0, Programs = 0, DiffFuncs = 0, TotalFuncs = 0;
  std::string Report;
  for (const fs::path &P : corpus()) {
    ++Programs;
    Module M = parseProgram(P);
    BackendRun A = runBackend(M, BackendKind::Retypd);
    BackendRun B = runBackend(M, BackendKind::BinSub);
    TotalFuncs += A.M.Funcs.size();
    std::string FuncDiffs;
    size_t Diffs = countPrototypeDiffs(A, B, FuncDiffs);
    DiffFuncs += Diffs;
    if (Diffs == 0) {
      ++Identical;
      Report += "  " + P.stem().string() + ": prototypes byte-identical\n";
    } else {
      Report += "  " + P.stem().string() + ": " + std::to_string(Diffs) +
                " differing prototype(s)\n" + FuncDiffs;
    }
    // Result-coverage parity: binsub must type exactly the functions
    // retypd types (same query status function by function).
    for (uint32_t F = 0; F < A.M.Funcs.size(); ++F)
      EXPECT_EQ(A.R.prototype(F, A.M).Status, B.R.prototype(F, B.M).Status)
          << P << " fn " << A.M.Funcs[F].Name;
  }
  std::printf("cross-validation (golden corpus): %zu/%zu programs agree, "
              "%zu/%zu prototypes differ\n%s",
              Identical, Programs, DiffFuncs, TotalFuncs, Report.c_str());
  // Agreement floor, calibrated on the checked-in corpus: at most one
  // program may diverge, and only by a couple of functions.
  EXPECT_GE(Identical + 1, Programs) << Report;
  EXPECT_LE(DiffFuncs, 2u) << Report;
}

TEST(BackendTest, CrossValidationSynthMetricsParity) {
  // Where the backends disagree semantically, eval/Metrics against exact
  // synthetic ground truth bounds the gap: binsub must stay comparably
  // conservative and accurate — it is a speed/simplicity recasting, not
  // a different type system.
  SynthGenerator Gen;
  Lattice Lat = makeDefaultLattice();
  Evaluator Eval(Lat);
  std::string Report;
  for (uint64_t Seed : {1u, 7u, 23u}) {
    SynthOptions SO;
    SO.Seed = Seed;
    SO.TargetInstructions = 300;
    SynthProgram Prog = Gen.generate("xval_" + std::to_string(Seed), SO);
    BackendRun A = runBackend(Prog.M, BackendKind::Retypd);
    BackendRun B = runBackend(Prog.M, BackendKind::BinSub);
    MetricSummary MA = Eval.scoreRetypd(A.M, A.R, *Prog.Truth);
    MetricSummary MB = Eval.scoreRetypd(B.M, B.R, *Prog.Truth);
    char Line[256];
    std::snprintf(Line, sizeof(Line),
                  "  seed %llu: dist %.3f/%.3f cons %.3f/%.3f ptr %.3f/%.3f "
                  "const %.3f/%.3f (retypd/binsub)\n",
                  static_cast<unsigned long long>(Seed), MA.meanDistance(),
                  MB.meanDistance(), MA.conservativeness(),
                  MB.conservativeness(), MA.pointerAccuracy(),
                  MB.pointerAccuracy(), MA.constRecall(), MB.constRecall());
    Report += Line;
    EXPECT_EQ(MA.Slots, MB.Slots) << "seed " << Seed;
    EXPECT_LE(MB.meanDistance(), MA.meanDistance() + 0.5) << "seed " << Seed;
    EXPECT_GE(MB.conservativeness(), MA.conservativeness() - 0.05)
        << "seed " << Seed;
    EXPECT_GE(MB.pointerAccuracy(), MA.pointerAccuracy() - 0.1)
        << "seed " << Seed;
    EXPECT_GE(MB.constRecall(), MA.constRecall() - 0.1) << "seed " << Seed;
  }
  std::printf("cross-validation (synth metrics):\n%s", Report.c_str());
}

TEST(BackendTest, BinSubByteIdenticalAcrossJobs) {
  // The acceptance bar: binsub reports are byte-identical at --jobs
  // 1/4/auto. The backend's determinism contract (no interning-order
  // leakage into output) is exactly what this pins.
  for (const fs::path &P : corpus()) {
    Module M = parseProgram(P);
    std::string Seq = runBackend(M, BackendKind::BinSub, 1).Text;
    EXPECT_EQ(Seq, runBackend(M, BackendKind::BinSub, 4).Text)
        << "jobs=4 diverged: " << P;
    EXPECT_EQ(Seq, runBackend(M, BackendKind::BinSub, 0).Text)
        << "jobs=auto diverged: " << P;
  }
}

TEST(BackendTest, WarmBinSubAfterRetypdHasZeroFalseHits) {
  // One shared cache, retypd first. The binsub run may hit generation
  // entries — constraint generation precedes the solver and is shared —
  // but every scheme/solution probe must miss (backend-keyed), so its
  // total hits equal exactly its gen hits. And the cached run must be
  // byte-identical to an uncached binsub run: nothing retypd-produced
  // leaked through.
  for (const fs::path &P : corpus()) {
    std::string Plain = runBackend(parseProgram(P), BackendKind::BinSub).Text;
    SummaryCache Cache;
    runBackend(parseProgram(P), BackendKind::Retypd, 1, &Cache);
    BackendRun B = runBackend(parseProgram(P), BackendKind::BinSub, 1, &Cache);
    EXPECT_EQ(B.R.Stats.CacheHits, B.R.Stats.GenCacheHits)
        << "binsub replayed a retypd scheme/solution: " << P;
    EXPECT_EQ(B.Text, Plain) << "retypd-warmed binsub run diverged: " << P;
    // A second binsub run is fully warm in its own key space.
    BackendRun B2 =
        runBackend(parseProgram(P), BackendKind::BinSub, 1, &Cache);
    EXPECT_EQ(B2.R.Stats.CacheMisses, 0u) << P;
    EXPECT_EQ(B2.Text, Plain) << P;
  }
}

TEST(BackendTest, StoreRecordsAreBackendTagged) {
  // Both backends into one store directory: inspect must attribute the
  // records per backend via the payload tag's backend bit (0x10).
  fs::path Dir = fs::temp_directory_path() / "retypd_backend_store";
  fs::remove_all(Dir);
  const fs::path P = corpus().front();
  {
    SummaryCache Cache;
    ASSERT_TRUE(Cache.openStore(Dir.string()));
    runBackend(parseProgram(P), BackendKind::Retypd, 1, &Cache);
  }
  {
    SummaryCache Cache;
    ASSERT_TRUE(Cache.openStore(Dir.string()));
    runBackend(parseProgram(P), BackendKind::BinSub, 1, &Cache);
  }
  StoreInfo Info = Store::inspect(Dir.string(), kSummaryCacheSchemaVersion);
  ASSERT_TRUE(Info.Ok) << Info.Error;
  auto CountOf = [&](uint8_t Kind) {
    auto It = Info.LiveKindCounts.find(Kind);
    return It == Info.LiveKindCounts.end() ? size_t(0) : It->second;
  };
  const uint8_t SchemeTag = kSchemePayloadVersion;          // 0x03
  const uint8_t GenTag = 0x40 | kSchemePayloadVersion;      // 0x43
  const uint8_t BundleTag = 0x80 | kSchemePayloadVersion;   // 0x83
  EXPECT_GT(CountOf(SchemeTag), 0u) << "no retypd schemes";
  EXPECT_GT(CountOf(SchemeTag | kPayloadBackendBit), 0u) << "no binsub schemes";
  EXPECT_GT(CountOf(BundleTag), 0u) << "no retypd solutions";
  EXPECT_GT(CountOf(BundleTag | kPayloadBackendBit), 0u)
      << "no binsub solutions";
  EXPECT_GT(CountOf(GenTag), 0u) << "no gen results";
  EXPECT_EQ(CountOf(GenTag | kPayloadBackendBit), 0u)
      << "gen results are backend-independent and must not carry the bit";
  // Same kind names the CLI prints.
  EXPECT_STREQ(payloadKindName(SchemeTag), "scheme");
  EXPECT_STREQ(payloadKindName(SchemeTag | kPayloadBackendBit), "scheme");
  EXPECT_EQ(payloadBackend(SchemeTag | kPayloadBackendBit),
            BackendKind::BinSub);
  fs::remove_all(Dir);
}

TEST(BackendTest, DiamondLadderUnderBinSub) {
  // ROADMAP open item 4: does algebraic subtyping sidestep the
  // sketch-join growth on the 12-layer diamond ladder? Run it under
  // binsub at several job counts — correctness (byte-identity and
  // completion) is the test contract; the timing comparison against
  // retypd is recorded in ROADMAP.md.
  Module M = parseAsm(diamondAsm(12));
  BackendRun Seq = runBackend(M, BackendKind::BinSub, 1);
  EXPECT_EQ(Seq.R.Stats.Backend, "binsub");
  EXPECT_EQ(Seq.R.Stats.SccCount, 37u); // 1 + 3 * 12
  for (unsigned Jobs : {4u, 0u}) {
    BackendRun Par = runBackend(M, BackendKind::BinSub, Jobs);
    EXPECT_EQ(Par.Text, Seq.Text) << "diamond binsub jobs=" << Jobs;
  }
  std::printf("diamond(12) binsub: simplify=%.3fs solve=%.3fs\n",
              Seq.R.Stats.SimplifySecs, Seq.R.Stats.SolveSecs);
}
