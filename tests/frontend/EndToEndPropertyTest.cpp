//===- EndToEndPropertyTest.cpp - Whole-pipeline invariants --------------------===//
//
// Parameterized end-to-end sweeps: for seeded random programs from the
// idiom corpus, the full pipeline must uphold its contract-level
// invariants regardless of program shape.
//
//===----------------------------------------------------------------------===//

#include "absint/ConcreteInterp.h"
#include "eval/Metrics.h"
#include "frontend/Pipeline.h"
#include "loader/BinaryImage.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

using namespace retypd;

class EndToEnd : public ::testing::TestWithParam<unsigned> {};

TEST_P(EndToEnd, EveryTruthFunctionGetsAType) {
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetInstructions = 300;
  SynthProgram P = Gen.generate("e2e", Opts);
  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(P.M);

  for (uint32_t F = 0; F < P.M.Funcs.size(); ++F) {
    if (P.M.Funcs[F].IsExternal)
      continue;
    if (!P.Truth->Funcs.count(P.M.Funcs[F].Name))
      continue;
    const FunctionTypes *T = R.typesOf(F);
    ASSERT_NE(T, nullptr) << P.M.Funcs[F].Name;
    EXPECT_NE(T->CType, NoCType) << P.M.Funcs[F].Name;
    // The declared parameter count is recovered exactly — except for the
    // deliberate §2.5 false positives, where interface recovery reports a
    // spurious *register* parameter on top of the declared ones.
    size_t Declared = P.Truth->Funcs.at(P.M.Funcs[F].Name).Params.size();
    if (P.M.Funcs[F].RegParams.empty())
      EXPECT_EQ(T->NumParams, Declared) << P.M.Funcs[F].Name;
    else
      EXPECT_GE(T->NumParams, Declared) << P.M.Funcs[F].Name;
  }
}

TEST_P(EndToEnd, ConservativenessFloor) {
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions Opts;
  Opts.Seed = GetParam() + 1000;
  Opts.TargetInstructions = 350;
  SynthProgram P = Gen.generate("e2e", Opts);
  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(P.M);
  Evaluator Eval(Lat);
  MetricSummary S = Eval.scoreRetypd(P.M, R, *P.Truth);
  ASSERT_GT(S.Slots, 10u);
  EXPECT_GE(S.conservativeness(), 0.90);
  EXPECT_LE(S.meanDistance(), 1.5);
}

TEST_P(EndToEnd, StrippedRoundTripStillInfers) {
  // generate → encode → decode (names gone) → infer: the pipeline output
  // for the recovered entry must cover the discovered functions.
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions Opts;
  Opts.Seed = GetParam() + 2000;
  Opts.TargetInstructions = 200;
  SynthProgram P = Gen.generate("e2e", Opts);
  EncodedImage Img = encodeModule(P.M);
  DecodeReport Rep;
  auto M = decodeImage(Img.Bytes, Rep);
  ASSERT_TRUE(M) << Rep.Error;
  EXPECT_EQ(Rep.BadInstructions, 0u);
  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(*M);
  unsigned Typed = 0;
  for (const auto &[F, T] : R.Funcs)
    Typed += T.CType != NoCType;
  EXPECT_GE(Typed, Rep.FunctionsDiscovered / 2);
}

TEST_P(EndToEnd, SchemesReSolveToSameCType) {
  // Determinism: running the pipeline twice yields identical prototypes.
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions Opts;
  Opts.Seed = GetParam() + 3000;
  Opts.TargetInstructions = 200;
  SynthProgram P = Gen.generate("e2e", Opts);

  Module M1 = P.M, M2 = P.M;
  Pipeline PipeA(Lat), PipeB(Lat);
  TypeReport A = PipeA.run(M1);
  TypeReport B = PipeB.run(M2);
  for (const auto &[F, T] : A.Funcs) {
    if (T.CType == NoCType)
      continue;
    EXPECT_EQ(A.prototypeOf(F, M1), B.prototypeOf(F, M2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd,
                         ::testing::Values(41u, 42u, 43u, 44u, 45u, 46u,
                                           47u, 48u));
