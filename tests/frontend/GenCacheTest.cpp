//===- GenCacheTest.cpp - Generation-result cache invalidation matrix ---------===//
//
// The generation cache (PR 4) replays per-SCC constraint generation from
// binary payloads keyed by the full dependency set of the generation walk.
// These tests pin down both directions of that contract:
//
//  - REPLAY IS EXACT: a warm run's report is byte-identical to a fresh
//    run's, with zero generation-cache misses and zero constraint parses.
//  - MISS ON ANY DEPENDENCY CHANGE: a body edit, a callee scheme change,
//    and a globals-table change each force the affected functions' probes
//    to miss — while provably-unaffected functions keep hitting (and a
//    callee edit that leaves its *scheme* unchanged stops the dirtiness
//    from reaching callers, mirroring the session's early cutoff).
//
//===----------------------------------------------------------------------===//

#include "absint/ConstraintGen.h"
#include "core/SummaryCache.h"
#include "frontend/Pipeline.h"
#include "frontend/ReportPrinter.h"
#include "mir/AsmParser.h"
#include "support/Stats.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

using namespace retypd;

namespace {

Module parseOk(const std::string &Asm) {
  AsmParser P;
  auto M = P.parse(Asm);
  EXPECT_TRUE(M.has_value()) << P.error();
  return M ? *M : Module();
}

struct RunOut {
  std::string Report;
  PipelineStats Stats;
  uint64_t ParseCalls = 0;
};

/// One-shot pipeline run over \p Asm against \p Cache, with the rendered
/// report and the run's stats.
RunOut run(const std::string &Asm, SummaryCache *Cache, unsigned Jobs = 1) {
  Module M = parseOk(Asm);
  Lattice Lat = makeDefaultLattice();
  PipelineOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Cache = Cache;
  uint64_t Parses0 =
      EventCounters::ConstraintParseCalls.load(std::memory_order_relaxed);
  Pipeline Pipe(Lat, Opts);
  TypeReport R = Pipe.run(M);
  RunOut Out;
  Out.Report = renderReport(R, M, Lat);
  Out.Stats = R.Stats;
  Out.ParseCalls =
      EventCounters::ConstraintParseCalls.load(std::memory_order_relaxed) -
      Parses0;
  return Out;
}

const char *kTwoLeaves = R"(
global counter, 4
fn f:
  load eax, [esp+4]
  load ebx, [@counter]
  add eax, ebx
  ret
fn g:
  load eax, [esp+4]
  load eax, [eax+4]
  ret
)";

const char *kCallerCallee = R"(
fn callee:
  load eax, [esp+4]
  load eax, [eax+0]
  ret
fn caller:
  load eax, [esp+4]
  push eax
  call callee
  add esp, 4
  ret
)";

} // namespace

TEST(GenCacheTest, WarmRunReplaysGenerationByteForByte) {
  RunOut Plain = run(kTwoLeaves, nullptr);
  EXPECT_EQ(Plain.Stats.GenCacheHits, 0u);
  EXPECT_EQ(Plain.Stats.GenCacheMisses, 0u);

  SummaryCache Cache;
  RunOut Cold = run(kTwoLeaves, &Cache);
  EXPECT_EQ(Cold.Stats.GenCacheHits, 0u);
  EXPECT_EQ(Cold.Stats.GenCacheMisses, 2u) << "two single-function SCCs";

  RunOut Warm = run(kTwoLeaves, &Cache);
  EXPECT_EQ(Warm.Stats.GenCacheHits, 2u);
  EXPECT_EQ(Warm.Stats.GenCacheMisses, 0u);
  EXPECT_EQ(Warm.ParseCalls, 0u) << "warm generation must not parse text";

  EXPECT_EQ(Plain.Report, Cold.Report);
  EXPECT_EQ(Cold.Report, Warm.Report) << "gen-cache replay diverged";
}

TEST(GenCacheTest, BodyEditForcesMissOnlyForEditedFunction) {
  SummaryCache Cache;
  run(kTwoLeaves, &Cache);

  // Same module with g's field offset edited: g must regenerate, f must
  // keep replaying.
  std::string Edited = kTwoLeaves;
  size_t Pos = Edited.find("[eax+4]");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 7, "[eax+8]");

  RunOut Second = run(Edited, &Cache);
  EXPECT_EQ(Second.Stats.GenCacheHits, 1u) << "f was not edited";
  EXPECT_EQ(Second.Stats.GenCacheMisses, 1u) << "g's body changed";
  EXPECT_EQ(run(Edited, nullptr).Report, Second.Report);
}

TEST(GenCacheTest, CalleeSchemeChangeForcesCallerMiss) {
  SummaryCache Cache;
  run(kCallerCallee, &Cache);

  // Editing the callee's behaviour changes its scheme; the caller's body
  // is untouched but its generated constraints instantiated that scheme,
  // so its probe must miss too.
  std::string Edited = kCallerCallee;
  size_t Pos = Edited.find("[eax+0]");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 7, "[eax+12]");

  RunOut Second = run(Edited, &Cache);
  EXPECT_EQ(Second.Stats.GenCacheHits, 0u);
  EXPECT_EQ(Second.Stats.GenCacheMisses, 2u)
      << "callee (body) and caller (callee scheme) must both regenerate";
  EXPECT_EQ(run(Edited, nullptr).Report, Second.Report);
}

TEST(GenCacheTest, SchemePreservingCalleeEditKeepsCallerHit) {
  SummaryCache Cache;
  run(kCallerCallee, &Cache);

  // A trailing label-free `nop` appended via an extra basic block changes
  // the callee's body hash but not its generated constraints, hence not
  // its scheme — the caller's dependency key is unchanged and keeps
  // hitting (the generation-cache analog of the scheme-change early
  // cutoff).
  std::string Edited = kCallerCallee;
  size_t Pos = Edited.find("  load eax, [eax+0]");
  ASSERT_NE(Pos, std::string::npos);
  Edited.insert(Pos, "  nop\n");

  RunOut Second = run(Edited, &Cache);
  EXPECT_EQ(Second.Stats.GenCacheMisses, 1u) << "callee body changed";
  EXPECT_EQ(Second.Stats.GenCacheHits, 1u)
      << "caller depends on the callee's scheme, which is unchanged";
  EXPECT_EQ(run(Edited, nullptr).Report, Second.Report);
}

TEST(GenCacheTest, GlobalsTableChangeForcesAllMisses) {
  SummaryCache Cache;
  run(kTwoLeaves, &Cache);

  // Adding a global — even an unreferenced one — changes the environment
  // signature every gen key includes; the conservative contract is that
  // every probe misses.
  std::string Edited = kTwoLeaves;
  size_t Pos = Edited.find("fn f:");
  ASSERT_NE(Pos, std::string::npos);
  Edited.insert(Pos, "global spare, 8\n");

  RunOut Second = run(Edited, &Cache);
  EXPECT_EQ(Second.Stats.GenCacheHits, 0u);
  EXPECT_EQ(Second.Stats.GenCacheMisses, 2u);
  EXPECT_EQ(run(Edited, nullptr).Report, Second.Report);
}

TEST(GenCacheTest, EnvironmentSignatureCoversLattice) {
  Module M = parseOk(kTwoLeaves);
  Lattice Default = makeDefaultLattice();

  LatticeBuilder B;
  B.add("num32", Lattice::Top);
  Lattice Tiny;
  std::string Err;
  ASSERT_TRUE(B.build(Tiny, Err)) << Err;

  EXPECT_NE(ConstraintGenerator::envSig(M, Default),
            ConstraintGenerator::envSig(M, Tiny))
      << "lattice identity must be part of every generation key";
}

TEST(GenCacheTest, ReplayMatchesFreshOverRandomModules) {
  // The miss-on-any-dependency-change property test's positive half: over
  // random synthesized modules, cached replay is byte-for-byte equal to a
  // fresh run, at jobs=1 and jobs=4.
  for (uint64_t Seed : {3u, 5u, 9u}) {
    SynthOptions O;
    O.Seed = Seed;
    O.TargetInstructions = 1500;
    SynthGenerator Gen;
    SynthProgram P = Gen.generate("gencache", O);
    std::string Asm = P.AsmText;

    for (unsigned Jobs : {1u, 4u}) {
      SummaryCache Cache;
      RunOut Plain = run(Asm, nullptr, Jobs);
      RunOut Cold = run(Asm, &Cache, Jobs);
      RunOut Warm = run(Asm, &Cache, Jobs);
      EXPECT_EQ(Plain.Report, Cold.Report)
          << "seed " << Seed << " jobs " << Jobs;
      EXPECT_EQ(Cold.Report, Warm.Report)
          << "seed " << Seed << " jobs " << Jobs;
      EXPECT_GT(Warm.Stats.GenCacheHits, 0u);
      EXPECT_EQ(Warm.Stats.GenCacheMisses, 0u)
          << "seed " << Seed << " jobs " << Jobs;
      EXPECT_EQ(Warm.ParseCalls, 0u);
    }
  }
}

TEST(GenCacheTest, CorruptGenEntriesSelfHeal) {
  SummaryCache Cache;
  run(kTwoLeaves, &Cache);
  ASSERT_GT(Cache.size(), 0u);

  // Corrupt every payload IN PLACE, under its real key: the next run's
  // probes must find the corrupt bytes, reject them (counted as misses),
  // drop the entries, recompute, and overwrite — and still produce the
  // right report. Keys are not enumerable through the public API, so
  // recover them from the persisted file format ("entry <32 hex> <len>"
  // lines, documented stable for v3).
  std::string Path = ::testing::TempDir() + "gencache-corrupt.bin";
  ASSERT_TRUE(Cache.save(Path));
  std::vector<SummaryKey> Keys;
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Line;
    ASSERT_TRUE(std::getline(In, Line)); // header
    while (std::getline(In, Line)) {
      unsigned long long Hi = 0, Lo = 0, Bytes = 0;
      if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                      &Bytes) != 3)
        continue;
      Keys.push_back(SummaryKey{Hi, Lo});
      In.ignore(static_cast<std::streamsize>(Bytes) + 1);
    }
  }
  std::remove(Path.c_str());
  ASSERT_EQ(Keys.size(), Cache.size());
  for (const SummaryKey &K : Keys)
    Cache.insertPayload(K, "corrupt");

  RunOut Fresh = run(kTwoLeaves, nullptr);
  RunOut Second = run(kTwoLeaves, &Cache);
  EXPECT_EQ(Second.Report, Fresh.Report);
  EXPECT_EQ(Second.Stats.GenCacheHits, 0u);
  EXPECT_EQ(Second.Stats.GenCacheMisses, 2u)
      << "corrupt gen payloads must probe as misses";

  RunOut Third = run(kTwoLeaves, &Cache);
  EXPECT_EQ(Third.Stats.GenCacheMisses, 0u)
      << "self-healed entries must replay";
  EXPECT_GT(Third.Stats.GenCacheHits, 0u);
  EXPECT_EQ(Third.Report, Fresh.Report);
}

TEST(GenCacheTest, GenEntriesPersistAcrossSaveAndLoad) {
  // Gen payloads share the summary-cache file format: a cache persisted
  // after one process's run makes the next process's generation warm.
  std::string Path = ::testing::TempDir() + "gencache-persist.bin";
  {
    SummaryCache Cache;
    run(kTwoLeaves, &Cache);
    ASSERT_TRUE(Cache.save(Path));
  }
  SummaryCache Reloaded;
  ASSERT_TRUE(Reloaded.load(Path));
  RunOut Warm = run(kTwoLeaves, &Reloaded);
  EXPECT_GT(Warm.Stats.GenCacheHits, 0u);
  EXPECT_EQ(Warm.Stats.GenCacheMisses, 0u);
  EXPECT_EQ(Warm.Report, run(kTwoLeaves, nullptr).Report);
  std::remove(Path.c_str());
}
