//===- GoldenTest.cpp - Golden end-to-end corpus ------------------------------===//
//
// Diffs full rendered type reports for the checked-in corpus under
// tests/frontend/golden/ against their .expected files, and locks down the
// parallel pipeline's contract: for every program, `--jobs 4` and
// cache-replayed runs must produce byte-identical reports to `--jobs 1`.
//
// To add a golden test: drop prog.asm into tests/frontend/golden/, run
//   build/retypd-cli --schemes tests/frontend/golden/prog.asm
// redirecting stdout to tests/frontend/golden/prog.expected, and review
// the diff like any other code change.
//
//===----------------------------------------------------------------------===//

#include "core/SummaryCache.h"
#include "frontend/Pipeline.h"
#include "frontend/ReportPrinter.h"
#include "mir/AsmParser.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace retypd;
namespace fs = std::filesystem;

namespace {

fs::path goldenDir() {
  return fs::path(RETYPD_SOURCE_DIR) / "tests" / "frontend" / "golden";
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In) << "cannot open " << P;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::vector<fs::path> corpus() {
  std::vector<fs::path> Programs;
  for (const auto &Entry : fs::directory_iterator(goldenDir()))
    if (Entry.path().extension() == ".asm")
      Programs.push_back(Entry.path());
  std::sort(Programs.begin(), Programs.end());
  return Programs;
}

Module parseProgram(const fs::path &P) {
  AsmParser Parser;
  auto M = Parser.parse(slurp(P));
  EXPECT_TRUE(M.has_value()) << P << ": " << Parser.error();
  return M ? *M : Module();
}

/// Renders the exact bytes `retypd-cli --schemes` would print.
std::string runReport(const fs::path &P, unsigned Jobs,
                      SummaryCache *Cache = nullptr) {
  Module M = parseProgram(P);
  Lattice Lat = makeDefaultLattice();
  PipelineOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Cache = Cache;
  Pipeline Pipe(Lat, Opts);
  TypeReport R = Pipe.run(M);
  ReportPrintOptions Print;
  Print.Schemes = true;
  return renderReport(R, M, Lat, Print);
}

} // namespace

TEST(GoldenTest, CorpusIsNonTrivial) {
  // The issue calls for >= 5 programs covering lists, callbacks, malloc
  // polymorphism, and mutual recursion.
  EXPECT_GE(corpus().size(), 5u);
}

TEST(GoldenTest, MatchesExpectedReports) {
  for (const fs::path &P : corpus()) {
    fs::path Expected = P;
    Expected.replace_extension(".expected");
    ASSERT_TRUE(fs::exists(Expected))
        << Expected << " missing — regenerate with retypd-cli --schemes";
    EXPECT_EQ(runReport(P, 1), slurp(Expected)) << "golden diff: " << P;
  }
}

TEST(GoldenTest, ParallelRunsAreByteIdentical) {
  for (const fs::path &P : corpus()) {
    std::string Seq = runReport(P, 1);
    EXPECT_EQ(Seq, runReport(P, 4)) << "jobs=4 diverged: " << P;
    EXPECT_EQ(Seq, runReport(P, 0)) << "jobs=auto diverged: " << P;
  }
}

TEST(GoldenTest, CacheReplayIsByteIdentical) {
  for (const fs::path &P : corpus()) {
    SummaryCache Cache;
    std::string Cold = runReport(P, 2, &Cache);
    uint64_t MissesAfterCold = Cache.misses();
    // The binary data plane's contract: a warm run performs ZERO
    // ConstraintParser invocations — schemes replay through the codec.
    uint64_t ParsesBeforeWarm =
        EventCounters::ConstraintParseCalls.load(std::memory_order_relaxed);
    std::string Warm = runReport(P, 2, &Cache);
    EXPECT_EQ(
        EventCounters::ConstraintParseCalls.load(std::memory_order_relaxed),
        ParsesBeforeWarm)
        << "warm run parsed constraint text: " << P;
    EXPECT_EQ(Cold, runReport(P, 1)) << "cold cached run diverged: " << P;
    EXPECT_EQ(Cold, Warm) << "warm cached run diverged: " << P;
    // Every summarization must come from the cache on the warm run.
    EXPECT_EQ(Cache.misses(), MissesAfterCold)
        << "warm run missed the cache: " << P;
    EXPECT_GT(Cache.hits(), 0u) << P;
  }
}

TEST(GoldenTest, CachePersistsAcrossProcessesViaFile) {
  fs::path File = fs::temp_directory_path() / "retypd_golden_cache.bin";
  fs::remove(File);
  const fs::path P = corpus().front();
  {
    SummaryCache Cache;
    runReport(P, 1, &Cache);
    ASSERT_TRUE(Cache.save(File.string()));
  }
  SummaryCache Reloaded;
  ASSERT_TRUE(Reloaded.load(File.string()));
  EXPECT_GT(Reloaded.size(), 0u);
  std::string FromDisk = runReport(P, 1, &Reloaded);
  EXPECT_EQ(FromDisk, runReport(P, 1));
  EXPECT_GT(Reloaded.hits(), 0u);
  fs::remove(File);
}

TEST(GoldenTest, StoreWarmMatchesLegacyFileAndFreshRuns) {
  // The three persistence paths must be indistinguishable in output:
  // a fresh run, a warm run over the legacy v3 single-file cache, and a
  // warm run over the mmap-backed artifact store — and the store path
  // must be parse-free and copy-free (the zero-copy invariant).
  fs::path Dir = fs::temp_directory_path() / "retypd_golden_store";
  fs::path File = fs::temp_directory_path() / "retypd_golden_legacy.bin";
  fs::remove_all(Dir);
  fs::remove(File);
  const fs::path P = corpus().front();
  std::string Fresh = runReport(P, 1);

  // One cold run populates both the store and the legacy file.
  {
    SummaryCache Cache;
    ASSERT_TRUE(Cache.openStore(Dir.string()));
    EXPECT_EQ(runReport(P, 1, &Cache), Fresh);
    ASSERT_TRUE(Cache.save(File.string()));
  }

  // Store-backed warm run from an empty in-memory cache: every probe is
  // served zero-copy out of the mapped segments.
  {
    SummaryCache Warm;
    ASSERT_TRUE(Warm.openStore(Dir.string()));
    EventCounters::reset();
    EXPECT_EQ(runReport(P, 1, &Warm), Fresh) << "store warm run diverged";
    EXPECT_EQ(EventCounters::ConstraintParseCalls.load(), 0u)
        << "store warm run parsed constraint text";
    EXPECT_EQ(Warm.misses(), 0u) << "store warm run missed";
    EXPECT_GT(EventCounters::StoreHits.load(), 0u);
    EXPECT_EQ(EventCounters::StorePayloadCopies.load(), 0u)
        << "store warm run copied payload bytes";
  }

  // Legacy-file warm run: byte-identical too (store vs legacy vs fresh).
  {
    SummaryCache Legacy;
    ASSERT_TRUE(Legacy.load(File.string()));
    EXPECT_EQ(runReport(P, 1, &Legacy), Fresh) << "legacy warm run diverged";
    EXPECT_EQ(Legacy.misses(), 0u);
  }
  fs::remove_all(Dir);
  fs::remove(File);
}

TEST(GoldenTest, VerifyFullIsByteIdenticalAndClean) {
  // --verify=full must be a pure observer: for the whole corpus, the
  // rendered report is byte-identical to the unverified run at any job
  // count, no formation-rule violations are found, and the checks
  // actually ran (the Off-mode counter gate lives in bench_warmpath).
  for (const fs::path &P : corpus()) {
    std::string Plain = runReport(P, 1);
    for (unsigned Jobs : {1u, 4u}) {
      Module M = parseProgram(P);
      Lattice Lat = makeDefaultLattice();
      PipelineOptions Opts;
      Opts.Jobs = Jobs;
      Opts.Verify = VerifyLevel::Full;
      uint64_t Checks0 =
          EventCounters::VerifierChecks.load(std::memory_order_relaxed);
      Pipeline Pipe(Lat, Opts);
      TypeReport R = Pipe.run(M);
      EXPECT_TRUE(R.VerifyErrors.empty())
          << P << " jobs=" << Jobs << ": " << R.VerifyErrors.front();
      EXPECT_GT(EventCounters::VerifierChecks.load(std::memory_order_relaxed),
                Checks0)
          << "verify=full ran no checks: " << P;
      ReportPrintOptions Print;
      Print.Schemes = true;
      EXPECT_EQ(renderReport(R, M, Lat, Print), Plain)
          << "verify=full changed the report: " << P << " jobs=" << Jobs;
    }
  }
}

TEST(GoldenTest, VerifyFullCoversCacheReplayedArtifacts) {
  // A warm cached run under Full re-verifies the decoded artifacts; it
  // must stay clean and byte-identical too.
  const fs::path P = corpus().front();
  std::string Plain = runReport(P, 1);
  SummaryCache Cache;
  Module MCold = parseProgram(P);
  Lattice Lat = makeDefaultLattice();
  PipelineOptions Opts;
  Opts.Jobs = 2;
  Opts.Cache = &Cache;
  Opts.Verify = VerifyLevel::Full;
  {
    Pipeline Pipe(Lat, Opts);
    TypeReport R = Pipe.run(MCold);
    EXPECT_TRUE(R.VerifyErrors.empty()) << R.VerifyErrors.front();
  }
  Module MWarm = parseProgram(P);
  Pipeline Pipe(Lat, Opts);
  TypeReport R = Pipe.run(MWarm);
  EXPECT_TRUE(R.VerifyErrors.empty()) << R.VerifyErrors.front();
  EXPECT_GT(Cache.hits(), 0u);
  ReportPrintOptions Print;
  Print.Schemes = true;
  EXPECT_EQ(renderReport(R, MWarm, Lat, Print), Plain)
      << "verified warm run diverged: " << P;
}

TEST(GoldenTest, StoreWarmIsByteIdenticalAcrossJobCounts) {
  fs::path Dir = fs::temp_directory_path() / "retypd_golden_store_jobs";
  fs::remove_all(Dir);
  const fs::path P = corpus().front();
  std::string Fresh = runReport(P, 1);
  {
    SummaryCache Cache;
    ASSERT_TRUE(Cache.openStore(Dir.string()));
    EXPECT_EQ(runReport(P, 2, &Cache), Fresh);
  }
  for (unsigned Jobs : {1u, 4u}) {
    SummaryCache Warm;
    ASSERT_TRUE(Warm.openStore(Dir.string()));
    EXPECT_EQ(runReport(P, Jobs, &Warm), Fresh)
        << "store warm diverged at jobs=" << Jobs;
    EXPECT_EQ(Warm.misses(), 0u);
  }
  fs::remove_all(Dir);
}
