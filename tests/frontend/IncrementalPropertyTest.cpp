//===- IncrementalPropertyTest.cpp - Incremental == from-scratch --------------===//
//
// The incremental contract, property-tested: apply random edit sequences
// (modify function bodies, rewire call edges, add and remove functions) to
// golden-corpus modules and to a many-island synthetic module, and assert
// that every incremental re-analysis is byte-identical to a from-scratch
// analysis of the same module — for jobs=1 and jobs=4 — while never
// simplifying more SCCs than the from-scratch run.
//
//===----------------------------------------------------------------------===//

#include "frontend/ReportPrinter.h"
#include "frontend/Session.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

using namespace retypd;
namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In) << "cannot open " << P;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::vector<std::string> corpusTexts() {
  fs::path Dir = fs::path(RETYPD_SOURCE_DIR) / "tests" / "frontend" / "golden";
  std::vector<fs::path> Programs;
  for (const auto &Entry : fs::directory_iterator(Dir))
    if (Entry.path().extension() == ".asm")
      Programs.push_back(Entry.path());
  std::sort(Programs.begin(), Programs.end());
  std::vector<std::string> Texts;
  for (const fs::path &P : Programs)
    Texts.push_back(slurp(P));
  return Texts;
}

/// A synthetic module with many independent call islands: the shape where
/// incremental reuse must shine (an edit in one island leaves the others
/// untouched).
std::string manyIslandAsm() {
  std::string Asm = "extern close\n";
  for (int I = 0; I < 8; ++I) {
    std::string N = std::to_string(I);
    Asm += "fn leaf" + N + ":\n  load eax, [esp+4]\n  add eax, " +
           std::to_string(I + 1) + "\n  ret\n";
    Asm += "fn mid" + N + ":\n  load eax, [esp+4]\n  push eax\n  call leaf" +
           N + "\n  add esp, 4\n  ret\n";
    Asm += "fn top" + N + ":\n  push " + std::to_string(I * 10) +
           "\n  call mid" + N + "\n  add esp, 4\n  ret\n";
  }
  return Asm;
}

Module parseOk(const std::string &Text) {
  AsmParser P;
  auto M = P.parse(Text);
  EXPECT_TRUE(M.has_value()) << P.error();
  return M ? *M : Module();
}

std::string renderSession(const AnalysisSession &S) {
  ReportPrintOptions Print;
  Print.Schemes = true;
  Print.Sketches = true;
  return renderReport(*S.report(), S.module(), S.lattice(), Print);
}

std::string freshRender(const Module &M, unsigned Jobs,
                        PipelineStats *OutStats = nullptr) {
  SessionOptions Opts;
  Opts.Jobs = Jobs;
  AnalysisSession S(makeDefaultLattice(), Opts);
  S.loadModule(M);
  S.analyze();
  if (OutStats)
    *OutStats = S.report()->Stats;
  return renderSession(S);
}

//===----------------------------------------------------------------------===//
// Random module edits (well-formedness preserving)
//===----------------------------------------------------------------------===//

using Rng = std::mt19937;

uint32_t pick(Rng &G, uint32_t N) {
  return std::uniform_int_distribution<uint32_t>(0, N - 1)(G);
}

std::vector<uint32_t> internalFuncs(const Module &M) {
  std::vector<uint32_t> Ids;
  for (uint32_t F = 0; F < M.Funcs.size(); ++F)
    if (!M.Funcs[F].IsExternal && !M.Funcs[F].Body.empty())
      Ids.push_back(F);
  return Ids;
}

/// Edit 1: modify a body by tweaking an immediate operand (keeps all
/// instruction indices, so jump targets stay valid).
bool tweakImm(Module &M, Rng &G) {
  std::vector<uint32_t> Ids = internalFuncs(M);
  if (Ids.empty())
    return false;
  for (int Tries = 0; Tries < 8; ++Tries) {
    uint32_t F = Ids[pick(G, Ids.size())];
    auto &Body = M.Funcs[F].Body;
    std::vector<size_t> Sites;
    for (size_t I = 0; I < Body.size(); ++I)
      switch (Body[I].Op) {
      case Opcode::MovImm:
      case Opcode::AddImm:
      case Opcode::SubImm:
      case Opcode::CmpImm:
      case Opcode::PushImm:
        Sites.push_back(I);
        break;
      default:
        break;
      }
    if (Sites.empty())
      continue;
    Body[Sites[pick(G, Sites.size())]].Imm += 1 + pick(G, 5);
    return true;
  }
  return false;
}

/// Edit 2: rewire a call edge to a different internal function (same
/// instruction count; only the call-graph shape changes).
bool swapCallTarget(Module &M, Rng &G) {
  std::vector<uint32_t> Ids = internalFuncs(M);
  if (Ids.size() < 2)
    return false;
  for (int Tries = 0; Tries < 8; ++Tries) {
    uint32_t F = Ids[pick(G, Ids.size())];
    auto &Body = M.Funcs[F].Body;
    std::vector<size_t> Calls;
    for (size_t I = 0; I < Body.size(); ++I)
      if (Body[I].Op == Opcode::Call)
        Calls.push_back(I);
    if (Calls.empty())
      continue;
    uint32_t NewTarget = Ids[pick(G, Ids.size())];
    Body[Calls[pick(G, Calls.size())]].Target = NewTarget;
    return true;
  }
  return false;
}

/// Edit 3: add a fresh leaf function (uncalled; a new singleton SCC).
bool addLeaf(Module &M, Rng &G, unsigned &Counter) {
  Function F;
  F.Name = "prop_leaf" + std::to_string(Counter++);
  Instr Mv;
  Mv.Op = Opcode::MovImm;
  Mv.Dst = Reg::Eax;
  Mv.Imm = static_cast<int32_t>(pick(G, 100));
  F.Body.push_back(Mv);
  Instr Rt;
  Rt.Op = Opcode::Ret;
  F.Body.push_back(Rt);
  M.addFunction(std::move(F));
  return true;
}

/// Edit 4: remove an uncalled internal function, remapping call targets
/// above it.
bool removeUncalled(Module &M, Rng &G) {
  std::vector<char> Called(M.Funcs.size(), 0);
  for (const Function &F : M.Funcs)
    for (const Instr &I : F.Body)
      if (I.Op == Opcode::Call && I.Target < M.Funcs.size())
        Called[I.Target] = 1;
  std::vector<uint32_t> Victims;
  for (uint32_t F = 0; F < M.Funcs.size(); ++F)
    if (!M.Funcs[F].IsExternal && !Called[F] && M.Funcs.size() > 2)
      Victims.push_back(F);
  if (Victims.empty())
    return false;
  uint32_t Victim = Victims[pick(G, Victims.size())];
  M.Funcs.erase(M.Funcs.begin() + Victim);
  for (Function &F : M.Funcs)
    for (Instr &I : F.Body)
      if (I.Op == Opcode::Call && I.Target > Victim)
        --I.Target;
  M.FuncByName.clear();
  for (uint32_t F = 0; F < M.Funcs.size(); ++F)
    M.FuncByName[M.Funcs[F].Name] = F;
  if (M.EntryFunc >= M.Funcs.size())
    M.EntryFunc = 0;
  return true;
}

bool applyRandomEdit(Module &M, Rng &G, unsigned &LeafCounter) {
  switch (pick(G, 4)) {
  case 0:
    return tweakImm(M, G);
  case 1:
    return swapCallTarget(M, G);
  case 2:
    return addLeaf(M, G, LeafCounter);
  default:
    return removeUncalled(M, G);
  }
}

//===----------------------------------------------------------------------===//
// The property
//===----------------------------------------------------------------------===//

/// Drives one session through an edit sequence and checks the contract
/// after every step. Returns the number of incremental runs that reused at
/// least one SCC.
size_t checkEditSequence(const std::string &Asm, unsigned Jobs, uint32_t Seed,
                         unsigned Steps) {
  Rng G(Seed);
  unsigned LeafCounter = 0;
  Module M = parseOk(Asm);

  SessionOptions Opts;
  Opts.Jobs = Jobs;
  AnalysisSession S(makeDefaultLattice(), Opts);
  S.loadModule(M);
  S.analyze();
  EXPECT_EQ(renderSession(S), freshRender(M, Jobs)) << "seed " << Seed;

  size_t RunsWithReuse = 0;
  for (unsigned Step = 0; Step < Steps; ++Step) {
    if (!applyRandomEdit(M, G, LeafCounter))
      continue;
    S.updateModule(M);
    S.analyze();

    PipelineStats FreshStats;
    std::string Fresh = freshRender(M, Jobs, &FreshStats);
    std::string Inc2 = renderSession(S);
    EXPECT_EQ(Inc2, Fresh) << "incremental diverged: seed " << Seed
                           << " step " << Step << " jobs " << Jobs;
    if (Inc2 != Fresh)
      return RunsWithReuse; // later steps would only cascade the diff

    const PipelineStats &Inc = S.report()->Stats;
    EXPECT_TRUE(Inc.IncrementalRun);
    EXPECT_LE(Inc.SccsSimplified, FreshStats.SccsSimplified)
        << "seed " << Seed << " step " << Step;
    // Every SCC is accounted for exactly once in phase 1.
    EXPECT_EQ(Inc.SccsSimplified + Inc.SccsReused,
              FreshStats.SccsSimplified + FreshStats.SccsReused)
        << "seed " << Seed << " step " << Step;
    RunsWithReuse += Inc.SccsReused > 0;
  }
  return RunsWithReuse;
}

} // namespace

class IncrementalProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalProperty, GoldenCorpusEditSequencesJobs1) {
  unsigned Seed = GetParam();
  for (const std::string &Asm : corpusTexts())
    checkEditSequence(Asm, 1, Seed, 6);
}

TEST_P(IncrementalProperty, GoldenCorpusEditSequencesJobs4) {
  unsigned Seed = GetParam() + 500;
  for (const std::string &Asm : corpusTexts())
    checkEditSequence(Asm, 4, Seed, 4);
}

TEST_P(IncrementalProperty, ManyIslandsReuseIsGuaranteed) {
  unsigned Seed = GetParam() + 9000;
  // With 8 disjoint islands, any single-island edit sequence must leave
  // most SCCs reusable in every incremental run.
  size_t RunsWithReuse = checkEditSequence(manyIslandAsm(), 1, Seed, 6);
  EXPECT_GT(RunsWithReuse, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));
