//===- PerfSmokeTest.cpp - Tiny fixed-input warm-path smoke test --------------===//
//
// The `perf-smoke` CTest label (wired into check-tier1): a small
// fixed-input module analyzed cold then warm against one shared summary
// cache. Asserts the warm-path invariants that the benchmarks measure at
// scale, in a form cheap and deterministic enough for every CI run:
//
//   - nonzero cache reuse on the warm run (every summarization replays);
//   - zero ConstraintParser invocations while warm (binary codec only);
//   - warm wall time <= cold wall time (the generous bar: warm skips all
//     simplification work, so even on a noisy machine it must not LOSE;
//     the >=2x speedup target lives in bench_warmpath/BENCH_pipeline.json
//     where a bigger module makes it meaningful);
//   - byte-identical reports cold vs warm.
//
//===----------------------------------------------------------------------===//

#include "core/SummaryCache.h"
#include "frontend/Pipeline.h"
#include "frontend/ReportPrinter.h"
#include "support/Stats.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>

using namespace retypd;

namespace {

double timedRun(const Module &Prog, const Lattice &Lat, SummaryCache *Cache,
                std::string *OutReport) {
  Module M = Prog; // run on a copy: the pipeline mutates the module
  PipelineOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = Cache;
  auto T0 = std::chrono::steady_clock::now();
  Pipeline Pipe(Lat, Opts);
  TypeReport R = Pipe.run(M);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  if (OutReport)
    *OutReport = renderReport(R, M, Lat);
  return Secs;
}

} // namespace

TEST(PerfSmokeTest, WarmCacheNeverLosesAndNeverParses) {
  Lattice Lat = makeDefaultLattice();
  SynthOptions O;
  O.Seed = 23; // fixed input: same module every run
  O.TargetInstructions = 6000;
  SynthGenerator Gen;
  SynthProgram P = Gen.generate("perf-smoke", O);

  SummaryCache Cache;
  std::string ColdReport, WarmReport;
  double Cold = timedRun(P.M, Lat, &Cache, &ColdReport);
  uint64_t MissesAfterCold = Cache.misses();
  uint64_t HitsAfterCold = Cache.hits();
  ASSERT_GT(MissesAfterCold, 0u) << "cold run must populate the cache";
  // Single wall-clock samples flake under scheduler noise (and TSan).
  // Cold gets a second sample against a fresh cache; warm gets two
  // against the shared one; the invariant compares the minima.
  {
    SummaryCache Fresh;
    Cold = std::min(Cold, timedRun(P.M, Lat, &Fresh, nullptr));
  }

  uint64_t ParsesBeforeWarm =
      EventCounters::ConstraintParseCalls.load(std::memory_order_relaxed);
  double Warm = timedRun(P.M, Lat, &Cache, &WarmReport);
  Warm = std::min(Warm, timedRun(P.M, Lat, &Cache, nullptr));

  // Nonzero cache reuse: every summarization replays, none recompute.
  EXPECT_GT(Cache.hits(), HitsAfterCold) << "warm run reused nothing";
  EXPECT_EQ(Cache.misses(), MissesAfterCold) << "warm run missed the cache";

  // Zero text parsing on the warm path.
  EXPECT_EQ(
      EventCounters::ConstraintParseCalls.load(std::memory_order_relaxed),
      ParsesBeforeWarm)
      << "warm run invoked ConstraintParser";

  // Same bytes out.
  EXPECT_EQ(ColdReport, WarmReport);

  // The perf floor. Warm skips simplification entirely, so even with
  // scheduler noise it must come in at or under the cold time.
  EXPECT_LE(Warm, Cold) << "warm run slower than cold (" << Warm << "s vs "
                        << Cold << "s)";
}

TEST(PerfSmokeTest, StoreWarmPathIsParseFreeZeroCopyAndByteIdentical) {
  // The artifact-store analog of the warm-path invariants: a second
  // process (modeled by a fresh SummaryCache over the same directory)
  // replays the whole analysis out of the memory-mapped store — zero
  // ConstraintParser calls, zero cache misses, zero payload-byte copies.
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "retypd_perfsmoke_store";
  fs::remove_all(Dir);

  Lattice Lat = makeDefaultLattice();
  SynthOptions O;
  O.Seed = 23;
  O.TargetInstructions = 6000;
  SynthGenerator Gen;
  SynthProgram P = Gen.generate("perf-smoke-store", O);

  std::string ColdReport, WarmReport;
  {
    SummaryCache Cold;
    ASSERT_TRUE(Cold.openStore(Dir.string()));
    timedRun(P.M, Lat, &Cold, &ColdReport);
    EXPECT_GT(Cold.store()->keyCount(), 0u) << "cold run journaled nothing";
  }
  SummaryCache Warm;
  ASSERT_TRUE(Warm.openStore(Dir.string()));
  EventCounters::reset();
  timedRun(P.M, Lat, &Warm, &WarmReport);
  EXPECT_EQ(ColdReport, WarmReport);
  EXPECT_EQ(EventCounters::ConstraintParseCalls.load(), 0u)
      << "store warm run invoked ConstraintParser";
  EXPECT_EQ(Warm.misses(), 0u) << "store warm run missed the cache";
  EXPECT_GT(EventCounters::StoreHits.load(), 0u);
  EXPECT_EQ(EventCounters::StorePayloadCopies.load(), 0u)
      << "store warm run copied payload bytes off the mmap path";
  fs::remove_all(Dir);
}
