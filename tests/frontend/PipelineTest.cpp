//===- PipelineTest.cpp - End-to-end pipeline tests ---------------------------===//

#include "frontend/Pipeline.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class PipelineTest : public ::testing::Test {
protected:
  PipelineTest() : Lat(makeDefaultLattice()) {}

  Module parseOk(const std::string &Text) {
    AsmParser P;
    auto M = P.parse(Text);
    if (!M) {
      ADD_FAILURE() << P.error();
      return Module();
    }
    return *M;
  }

  std::string protoFor(Module &M, const std::string &Fn,
                       TypeReport *OutReport = nullptr) {
    Pipeline P(Lat);
    TypeReport R = P.run(M);
    auto Id = M.findFunction(Fn);
    EXPECT_TRUE(Id.has_value());
    std::string Proto = R.prototypeOf(*Id, M);
    if (OutReport)
      *OutReport = std::move(R);
    return Proto;
  }

  Lattice Lat;
};

} // namespace

// The paper's flagship example, end to end: Figure 2's machine code in,
// Figure 2's C type out.
TEST_F(PipelineTest, CloseLastFigure2) {
  Module M = parseOk(R"(
extern close
fn close_last:
  load edx, [esp+4]
  jmp check
advance:
  mov edx, eax
check:
  load eax, [edx+0]
  test eax, eax
  jnz advance
  load eax, [edx+4]
  push eax
  call close
  add esp, 4
  ret
)");
  TypeReport R;
  std::string Proto = protoFor(M, "close_last", &R);
  EXPECT_EQ(Proto, "int /*#SuccessZ*/ close_last(const Struct_0 *)")
      << Proto;

  // The struct rolls up recursively, like `struct LL { LL *next; int fd }`.
  uint32_t Id = *M.findFunction("close_last");
  std::string Defs = R.Pool.structDefinitions({R.typesOf(Id)->CType});
  EXPECT_NE(Defs.find("Struct_0 *field_0"), std::string::npos) << Defs;
  EXPECT_NE(Defs.find("/*#FileDescriptor*/ field_4"), std::string::npos)
      << Defs;

  // The scheme is polymorphic with one existential carrying the recursive
  // constraint, as in Figure 2.
  const TypeScheme &S = R.typesOf(Id)->Scheme;
  EXPECT_EQ(S.Existentials.size(), 1u);
}

TEST_F(PipelineTest, MallocIsPolymorphicAcrossCallsites) {
  // Two mallocs with different uses: one holds an int, one holds a pointer.
  // Unification would merge them; Retypd must not.
  Module M = parseOk(R"(
extern malloc
fn f:
  push 4
  call malloc
  add esp, 4
  mov esi, eax        ; esi = int cell
  store [esi], 7      ; (immediate, no info)
  load eax, [esp+4]
  store [esi], eax    ; store the int param
  push 4
  call malloc
  add esp, 4
  mov edi, eax        ; edi = pointer cell
  store [edi], esi
  ret
)");
  Pipeline P(Lat);
  TypeReport R = P.run(M);
  uint32_t Id = *M.findFunction("f");
  const Sketch &Sk = R.typesOf(Id)->FuncSketch;
  // in0 is an int-ish value stored through the first cell; the function
  // sketch must NOT claim in0 has pointer capabilities.
  auto In0 = Sk.stateAt(std::vector<Label>{Label::in(0)});
  ASSERT_TRUE(In0.has_value());
  EXPECT_FALSE(Sk.node(*In0).Children.count(Label::load()));
}

TEST_F(PipelineTest, InterproceduralFieldTypes) {
  // A getter used from a caller that builds the struct: scheme inference
  // bottom-up, then calling-context refinement.
  Module M = parseOk(R"(
extern malloc
extern close
fn get_fd:
  load edx, [esp+4]
  load eax, [edx+4]
  ret
fn use:
  push 8
  call malloc
  add esp, 4
  mov esi, eax
  load eax, [esp+4]
  store [esi+4], eax
  push esi
  call get_fd
  add esp, 4
  push eax
  call close
  add esp, 4
  ret
)");
  Pipeline P(Lat);
  TypeReport R = P.run(M);

  // get_fd's most-general scheme: ∀F. F.in0.load.s32@4 <= F.out (modulo τ).
  uint32_t GetFd = *M.findFunction("get_fd");
  const Sketch &Sk = R.typesOf(GetFd)->FuncSketch;
  std::vector<Label> Path{Label::in(0), Label::load(), Label::field(32, 4)};
  ASSERT_TRUE(Sk.hasPath(Path));

  // use's in0 (the fd it stores into the struct) reaches close's bound —
  // its own parameter becomes a file descriptor.
  uint32_t Use = *M.findFunction("use");
  const Sketch &UseSk = R.typesOf(Use)->FuncSketch;
  std::vector<Label> P0{Label::in(0)};
  ASSERT_TRUE(UseSk.hasPath(P0));
  EXPECT_EQ(Lat.name(UseSk.markAt(P0)), "#FileDescriptor");
}

TEST_F(PipelineTest, OutParamThroughPointer) {
  // void f(int *out) { *out = open(...); } — the parameter is a mutable
  // pointer (no const), and the pointee is a file descriptor.
  Module M = parseOk(R"(
extern open
fn f:
  load edx, [esp+4]
  push 0
  push 0
  call open
  add esp, 8
  store [edx], eax
  ret
)");
  TypeReport R;
  std::string Proto = protoFor(M, "f", &R);
  EXPECT_EQ(Proto.find("const"), std::string::npos) << Proto;
  uint32_t Id = *M.findFunction("f");
  const Sketch &Sk = R.typesOf(Id)->FuncSketch;
  std::vector<Label> P0{Label::in(0), Label::store(), Label::field(32, 0)};
  ASSERT_TRUE(Sk.hasPath(P0));
  EXPECT_EQ(Lat.name(Sk.markAt(P0)), "#FileDescriptor");
}

TEST_F(PipelineTest, RecursiveFunctionsSolve) {
  Module M = parseOk(R"(
fn len:
  load edx, [esp+4]
  test edx, edx
  jnz rec
  mov eax, 0
  ret
rec:
  load eax, [edx+0]
  push eax
  call len
  add esp, 4
  add eax, 1
  ret
)");
  TypeReport R;
  std::string Proto = protoFor(M, "len", &R);
  // A recursive list argument; the return is an int-ish scalar.
  uint32_t Id = *M.findFunction("len");
  const Sketch &Sk = R.typesOf(Id)->FuncSketch;
  std::vector<Label> Deep{Label::in(0), Label::load(), Label::field(32, 0),
                          Label::load(), Label::field(32, 0)};
  EXPECT_TRUE(Sk.hasPath(Deep)) << Proto;
}

TEST_F(PipelineTest, ConstOnlyWhenNeverStored) {
  Module M = parseOk(R"(
fn reads:
  load edx, [esp+4]
  load eax, [edx]
  ret
fn writes:
  load edx, [esp+4]
  load eax, [esp+8]
  store [edx], eax
  ret
fn main:
  halt
)");
  Pipeline P(Lat);
  TypeReport R = P.run(M);
  std::string ReadsProto = R.prototypeOf(*M.findFunction("reads"), M);
  std::string WritesProto = R.prototypeOf(*M.findFunction("writes"), M);
  EXPECT_NE(ReadsProto.find("const"), std::string::npos) << ReadsProto;
  EXPECT_EQ(WritesProto.find("const"), std::string::npos) << WritesProto;
}

TEST_F(PipelineTest, SpuriousRegisterParamDoesNotPoison) {
  // The push-ecx idiom (§2.5): callers' unrelated ecx values must not be
  // unified with anything; with subtyping they flow into a variable that
  // never constrains the callers back.
  Module M = parseOk(R"(
extern close
fn reserve:
  push ecx
  mov eax, 0
  store [esp], eax
  add esp, 4
  ret
fn caller1:
  load ecx, [esp+4]   ; an int param in ecx
  call reserve
  ret
fn caller2:
  push 4
  call malloc
  add esp, 4
  mov ecx, eax        ; a pointer in ecx
  call reserve
  ret
extern malloc
)");
  Pipeline P(Lat);
  TypeReport R = P.run(M);
  // caller1's parameter keeps a scalar type (no pointer capabilities leak
  // back from caller2 through reserve's spurious ecx parameter).
  uint32_t C1 = *M.findFunction("caller1");
  const Sketch &Sk = R.typesOf(C1)->FuncSketch;
  auto In0 = Sk.stateAt(std::vector<Label>{Label::in(0)});
  ASSERT_TRUE(In0.has_value());
  EXPECT_FALSE(Sk.node(*In0).Children.count(Label::load()));
  EXPECT_FALSE(Sk.node(*In0).Children.count(Label::store()));
}

TEST_F(PipelineTest, ReportCountsWork) {
  Module M = parseOk(R"(
fn f:
  load eax, [esp+4]
  ret
)");
  Pipeline P(Lat);
  TypeReport R = P.run(M);
  EXPECT_GT(R.ConstraintsGenerated, 0u);
  EXPECT_EQ(R.Funcs.size(), 1u);
}
