//===- SchedulerTest.cpp - Barrier-free readiness scheduler ------------------===//
//
// Adversarial call-graph shapes for the dependency-counted scheduler in
// frontend/Session: a long chain (zero parallelism, maximal commit
// pressure), a star (one wide wave), many independent tiny SCCs (the
// batching case), and a diamond ladder (join/fork readiness counts).
// For every shape the text AND JSON reports must be byte-identical across
// --jobs 1 / 4 / auto and across tiny-batching thresholds, the scheduler
// counters must satisfy their invariants, and after replaceFunction the
// dirty-cone run must schedule only the cone.
//
//===----------------------------------------------------------------------===//

#include "frontend/ReportJson.h"
#include "frontend/ReportPrinter.h"
#include "frontend/Session.h"
#include "mir/AsmParser.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace retypd;

namespace {

Module parseProgram(const std::string &Text) {
  AsmParser Parser;
  auto M = Parser.parse(Text);
  EXPECT_TRUE(M.has_value()) << Parser.error();
  return M ? *M : Module();
}

std::string renderSession(const AnalysisSession &S) {
  EXPECT_NE(S.report(), nullptr);
  ReportPrintOptions Print;
  Print.Schemes = true;
  Print.Sketches = true;
  return renderReport(*S.report(), S.module(), S.lattice(), Print);
}

std::string renderSessionJson(const AnalysisSession &S) {
  ReportJsonOptions Opts;
  Opts.Schemes = true;
  Opts.Sketches = true;
  return renderReportJson(*S.report(), S.module(), S.lattice(), Opts);
}

/// f0 <- f1 <- ... <- f(N-1): every SCC depends on exactly the previous
/// one, so the ready queue never holds more than one SCC and every
/// out-of-order publish would be a commit stall.
std::string chainAsm(unsigned N) {
  std::string Asm = "fn f0:\n  load eax, [esp+4]\n  add eax, 1\n  ret\n";
  for (unsigned I = 1; I < N; ++I)
    Asm += "fn f" + std::to_string(I) +
           ":\n  load eax, [esp+4]\n  push eax\n  call f" +
           std::to_string(I - 1) + "\n  add esp, 4\n  ret\n";
  return Asm;
}

/// hub -> {leaf0 .. leaf(N-1)}: one maximally wide readiness wave, then a
/// single SCC whose dependency count is N.
std::string starAsm(unsigned N) {
  std::string Asm;
  for (unsigned I = 0; I < N; ++I)
    Asm += "fn leaf" + std::to_string(I) +
           ":\n  load eax, [esp+4]\n  add eax, " + std::to_string(I + 1) +
           "\n  ret\n";
  Asm += "fn hub:\n";
  for (unsigned I = 0; I < N; ++I)
    Asm += "  push " + std::to_string(I) + "\n  call leaf" +
           std::to_string(I) + "\n  add esp, 4\n";
  Asm += "  ret\n";
  return Asm;
}

/// N fully independent tiny functions: every SCC is ready immediately and
/// far below the tiny-SCC constraint threshold, so batching must engage.
std::string manyTinyAsm(unsigned N) {
  std::string Asm;
  for (unsigned I = 0; I < N; ++I)
    Asm += "fn t" + std::to_string(I) +
           ":\n  load eax, [esp+4]\n  add eax, " + std::to_string(I % 7) +
           "\n  ret\n";
  return Asm;
}

/// A ladder of diamonds: top_i -> {a_i, b_i} -> top_(i-1). Fork/join
/// readiness: each join SCC waits on two callers (phase 2) / the two
/// arms wait on the same callee (phase 1). Depth is capped low: sketch
/// refinement joins grow with the number of distinct call paths, which
/// doubles per layer on this shape.
std::string diamondAsm(unsigned Layers) {
  std::string Asm = "fn d0:\n  load eax, [esp+4]\n  add eax, 1\n  ret\n";
  for (unsigned I = 1; I <= Layers; ++I) {
    std::string N = std::to_string(I), P = "d" + std::to_string(I - 1);
    Asm += "fn a" + N + ":\n  load eax, [esp+4]\n  push eax\n  call " + P +
           "\n  add esp, 4\n  ret\n";
    Asm += "fn b" + N + ":\n  load eax, [esp+4]\n  push eax\n  call " + P +
           "\n  add esp, 4\n  ret\n";
    Asm += "fn d" + N + ":\n  push " + N + "\n  call a" + N +
           "\n  add esp, 4\n  push " + N + "\n  call b" + N +
           "\n  add esp, 4\n  ret\n";
  }
  return Asm;
}

struct RunOutput {
  std::string Text;
  std::string Json;
  PipelineStats Stats;
};

RunOutput runShape(const Module &M, unsigned Jobs,
                   unsigned TinySccConstraints = 64) {
  SessionOptions Opts;
  Opts.Jobs = Jobs;
  Opts.TinySccConstraints = TinySccConstraints;
  AnalysisSession S(makeDefaultLattice(), Opts);
  S.loadModule(M);
  S.analyze();
  RunOutput Out;
  Out.Text = renderSession(S);
  Out.Json = renderSessionJson(S);
  Out.Stats = S.report()->Stats;
  return Out;
}

void checkCounters(const PipelineStats &St, const char *Shape) {
  // Every dispatched work item is either a phase-1 simplify or a phase-2
  // solve; replays and trivial slots never reach the pool.
  EXPECT_EQ(St.SccsScheduled, St.SccsSimplified + St.SccsSolved) << Shape;
  if (St.SccsScheduled > 0) {
    EXPECT_GE(St.BatchesFormed, 1u) << Shape;
    EXPECT_GE(St.MaxReadyQueue, 1u) << Shape;
  }
}

} // namespace

TEST(SchedulerTest, AdversarialShapesByteIdenticalAcrossJobs) {
  const std::pair<const char *, std::string> Shapes[] = {
      {"chain", chainAsm(200)},
      {"star", starAsm(300)},
      {"many-tiny", manyTinyAsm(500)},
      {"diamond", diamondAsm(12)},
  };
  for (const auto &[Name, Asm] : Shapes) {
    Module M = parseProgram(Asm);
    RunOutput Seq = runShape(M, 1);
    checkCounters(Seq.Stats, Name);
    // jobs=4 (oversubscribed on small CI boxes) and jobs=0 (auto: one
    // executor per hardware thread) must reproduce the jobs=1 bytes.
    for (unsigned Jobs : {4u, 0u}) {
      RunOutput Par = runShape(M, Jobs);
      EXPECT_EQ(Par.Text, Seq.Text) << Name << " jobs=" << Jobs;
      EXPECT_EQ(Par.Json, Seq.Json) << Name << " jobs=" << Jobs;
      checkCounters(Par.Stats, Name);
    }
  }
}

TEST(SchedulerTest, TinyBatchingIsPureScheduling) {
  // Threshold 0 (batching off), 64 (default), and effectively-infinite
  // must all produce identical bytes — batching only groups work units,
  // it never reorders commits.
  Module M = parseProgram(manyTinyAsm(300));
  RunOutput Off = runShape(M, 4, 0);
  RunOutput Default = runShape(M, 4, 64);
  RunOutput Huge = runShape(M, 4, 1u << 20);
  EXPECT_EQ(Default.Text, Off.Text);
  EXPECT_EQ(Default.Json, Off.Json);
  EXPECT_EQ(Huge.Text, Off.Text);

  // With batching off, every scheduled SCC is its own work unit; with it
  // on, 300 tiny ready SCCs coalesce into far fewer units.
  EXPECT_EQ(Off.Stats.BatchesFormed, Off.Stats.SccsScheduled);
  EXPECT_GE(Default.Stats.BatchesFormed, 1u);
  EXPECT_LT(Default.Stats.BatchesFormed, Default.Stats.SccsScheduled);
}

TEST(SchedulerTest, StarExposesWideReadyQueue) {
  Module M = parseProgram(starAsm(300));
  RunOutput R = runShape(M, 4, 0); // unbatched: queue width is visible
  // All 300 leaves are ready before any commit retires them.
  EXPECT_GE(R.Stats.MaxReadyQueue, 300u);
}

TEST(SchedulerTest, TracingNeverPerturbsReports) {
  // Recording a trace must be pure observation: the text and JSON reports
  // stay byte-identical to an untraced run, at every jobs setting, and
  // the recording actually captured the per-SCC work.
  Module M = parseProgram(diamondAsm(8));
  RunOutput Off1 = runShape(M, 1);
  RunOutput Off4 = runShape(M, 4);
  ASSERT_EQ(Off4.Text, Off1.Text);

  for (unsigned Jobs : {1u, 4u}) {
    trace::start();
    RunOutput On = runShape(M, Jobs);
    trace::stop();
    EXPECT_EQ(On.Text, Off1.Text) << "jobs=" << Jobs;
    EXPECT_EQ(On.Json, Off1.Json) << "jobs=" << Jobs;

    std::vector<trace::Event> Events = trace::collect();
    EXPECT_GT(Events.size(), 0u);
    size_t SccSpans = 0;
    for (const trace::Event &E : Events)
      if (E.Ph == 'X' && std::string(E.Cat) == "scc")
        ++SccSpans;
    // Every scheduled SCC shows up at least once (simplify or solve).
    EXPECT_GE(SccSpans, static_cast<size_t>(On.Stats.SccsScheduled))
        << "jobs=" << Jobs;
    // And the profile attributes it to named functions.
    auto Rows = trace::buildProfile(Events);
    EXPECT_GT(Rows.size(), 0u);
    for (const trace::ProfileRow &Row : Rows)
      EXPECT_FALSE(Row.Fn.empty()) << "scc " << Row.Scc;
  }
}

TEST(SchedulerTest, DirtyConeSeedsDependencyCounts) {
  // Edit one mid-chain function: the incremental run must re-seed the
  // scheduler's dependency counts correctly (byte-identity with a fresh
  // run) and schedule only the dirty cone, not the whole chain.
  const unsigned N = 60;
  std::string Asm = chainAsm(N);
  Module M = parseProgram(Asm);

  SessionOptions Opts;
  Opts.Jobs = 4;
  AnalysisSession S(makeDefaultLattice(), Opts);
  S.loadModule(M);
  S.analyze();
  PipelineStats Fresh = S.report()->Stats;
  checkCounters(Fresh, "chain-fresh");

  // New f30 body: a different constant propagates into its scheme.
  Module Edited = parseProgram(Asm);
  uint32_t F30 = *Edited.findFunction("f30");
  Function NewBody = Edited.Funcs[F30];
  for (Instr &I : NewBody.Body)
    if (I.Op == Opcode::AddImm)
      I.Imm += 7;
  Edited.Funcs[F30] = NewBody;
  ASSERT_TRUE(S.replaceFunction("f30", NewBody));
  S.analyze();

  PipelineStats Inc = S.report()->Stats;
  checkCounters(Inc, "chain-incremental");
  EXPECT_TRUE(Inc.IncrementalRun);
  // The cone of f30 is f30 itself (phase 1 stops when its scheme hash
  // settles; phase 2 re-solves what phase 1 recomputed) — far less than
  // the 60-SCC chain either way.
  EXPECT_LT(Inc.SccsScheduled, Fresh.SccsScheduled);
  EXPECT_GE(Inc.SccsScheduled, 1u);

  // Byte-identical to a from-scratch analysis of the edited module, at
  // every jobs setting.
  std::string IncText = renderSession(S);
  std::string IncJson = renderSessionJson(S);
  for (unsigned Jobs : {1u, 4u, 0u}) {
    RunOutput FreshRun = runShape(Edited, Jobs);
    EXPECT_EQ(IncText, FreshRun.Text) << "jobs=" << Jobs;
    EXPECT_EQ(IncJson, FreshRun.Json) << "jobs=" << Jobs;
  }
}
