//===- SessionTest.cpp - AnalysisSession API + incremental engine ------------===//
//
// Exercises the long-lived session API: structured query statuses,
// module lifecycle (load/update/replace/invalidate), and the incremental
// contract — a re-analysis after an edit must be byte-identical to a
// from-scratch run while reusing every unaffected SCC.
//
//===----------------------------------------------------------------------===//

#include "frontend/ReportPrinter.h"
#include "frontend/Session.h"
#include "support/Stats.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace retypd;
namespace fs = std::filesystem;

namespace {

fs::path goldenDir() {
  return fs::path(RETYPD_SOURCE_DIR) / "tests" / "frontend" / "golden";
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In) << "cannot open " << P;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::vector<fs::path> corpus() {
  std::vector<fs::path> Programs;
  for (const auto &Entry : fs::directory_iterator(goldenDir()))
    if (Entry.path().extension() == ".asm")
      Programs.push_back(Entry.path());
  std::sort(Programs.begin(), Programs.end());
  return Programs;
}

Module parseProgram(const std::string &Text) {
  AsmParser Parser;
  auto M = Parser.parse(Text);
  EXPECT_TRUE(M.has_value()) << Parser.error();
  return M ? *M : Module();
}

/// Full verbose rendering of a session's last report.
std::string renderSession(const AnalysisSession &S) {
  EXPECT_NE(S.report(), nullptr);
  ReportPrintOptions Print;
  Print.Schemes = true;
  Print.Sketches = true;
  return renderReport(*S.report(), S.module(), S.lattice(), Print);
}

/// From-scratch analysis of \p M, rendered.
std::string freshRender(const Module &M, unsigned Jobs = 1) {
  SessionOptions Opts;
  Opts.Jobs = Jobs;
  AnalysisSession S(makeDefaultLattice(), Opts);
  S.loadModule(M);
  S.analyze();
  return renderSession(S);
}

const char *kTwoIslandAsm = R"(
extern close
fn leaf_a:
  load eax, [esp+4]
  ret
fn caller_a:
  push 7
  call leaf_a
  add esp, 4
  ret
fn leaf_b:
  load edx, [esp+4]
  load eax, [edx+0]
  ret
fn caller_b:
  push 11
  call leaf_b
  add esp, 4
  push eax
  call close
  add esp, 4
  ret
)";

} // namespace

TEST(SessionTest, QueryStatusLifecycle) {
  AnalysisSession S(makeDefaultLattice());

  auto Q = S.prototypeOf("main");
  EXPECT_FALSE(Q);
  EXPECT_EQ(Q.Status, TypeQueryStatus::NoModule);

  ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
  Q = S.prototypeOf("leaf_a");
  EXPECT_EQ(Q.Status, TypeQueryStatus::NotAnalyzed);

  S.analyze();
  Q = S.prototypeOf("leaf_a");
  ASSERT_TRUE(Q) << typeQueryStatusName(Q.Status);
  EXPECT_NE(Q->find("leaf_a"), std::string::npos);

  // Unknown name vs known-but-untyped (external) are distinguishable.
  Q = S.prototypeOf("no_such_function");
  EXPECT_EQ(Q.Status, TypeQueryStatus::UnknownFunction);
  Q = S.prototypeOf("close");
  EXPECT_EQ(Q.Status, TypeQueryStatus::NoTypeInferred);

  EXPECT_TRUE(S.schemeOf("caller_b"));
  EXPECT_TRUE(S.sketchOf("caller_b"));
  EXPECT_EQ(S.schemeOf(12345u).Status, TypeQueryStatus::UnknownFunction);
}

TEST(SessionTest, TypeReportPrototypeStatus) {
  AnalysisSession S(makeDefaultLattice());
  ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
  S.analyze();
  const TypeReport &R = *S.report();
  EXPECT_TRUE(R.prototype(*S.functionId("leaf_a"), S.module()));
  EXPECT_EQ(R.prototype(9999, S.module()).Status,
            TypeQueryStatus::UnknownFunction);
  EXPECT_EQ(R.prototype(*S.functionId("close"), S.module()).Status,
            TypeQueryStatus::NoTypeInferred);
  // The legacy string form still renders the placeholder.
  EXPECT_EQ(R.prototypeOf(*S.functionId("close"), S.module()), "<no type>");
}

TEST(SessionTest, InvalidateOneReusesDisjointIsland) {
  AnalysisSession S(makeDefaultLattice());
  ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
  S.analyze();
  std::string First = renderSession(S);
  const PipelineStats FirstStats = S.report()->Stats;
  EXPECT_FALSE(FirstStats.IncrementalRun);

  ASSERT_TRUE(S.invalidate("leaf_a"));
  S.analyze();
  const PipelineStats &Inc = S.report()->Stats;
  EXPECT_EQ(renderSession(S), First);
  EXPECT_TRUE(Inc.IncrementalRun);
  // Only leaf_a and its caller re-simplify; the b-island reuses.
  EXPECT_LT(Inc.SccsSimplified, FirstStats.SccsSimplified);
  EXPECT_GE(Inc.SccsReused, 2u);
  // leaf_a's scheme is unchanged, so caller_a needn't re-simplify either.
  EXPECT_EQ(Inc.SccsSimplified, 1u);
}

TEST(SessionTest, NoEditReusesEverything) {
  AnalysisSession S(makeDefaultLattice());
  ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
  S.analyze();
  std::string First = renderSession(S);
  S.analyze();
  EXPECT_EQ(renderSession(S), First);
  const PipelineStats &Inc = S.report()->Stats;
  EXPECT_EQ(Inc.SccsSimplified, 0u);
  EXPECT_EQ(Inc.SccsSolved, 0u);
  EXPECT_EQ(Inc.FunctionsDirty, 0u);
  EXPECT_GE(Inc.SccsSolveReused, 4u);
}

TEST(SessionTest, ReplaceFunctionMatchesFreshRun) {
  AnalysisSession S(makeDefaultLattice());
  ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
  S.analyze();

  // New leaf_b body: return the pointer argument itself instead of a
  // loaded field — changes leaf_b's scheme and caller_b's refinement.
  Module Edited = parseProgram(kTwoIslandAsm);
  uint32_t LeafB = *Edited.findFunction("leaf_b");
  Function NewBody = Edited.Funcs[LeafB];
  NewBody.Body.erase(NewBody.Body.begin() + 1); // drop the field load
  ASSERT_TRUE(S.replaceFunction("leaf_b", NewBody));
  S.analyze();

  Edited.Funcs[LeafB].Body.erase(Edited.Funcs[LeafB].Body.begin() + 1);
  EXPECT_EQ(renderSession(S), freshRender(Edited));

  const PipelineStats &Inc = S.report()->Stats;
  EXPECT_TRUE(Inc.IncrementalRun);
  EXPECT_EQ(Inc.FunctionsDirty, 1u);
  // The a-island reuses both phases.
  EXPECT_GE(Inc.SccsReused, 2u);
  EXPECT_GE(Inc.SccsSolveReused, 2u);
}

TEST(SessionTest, UpdateModuleAddAndRemoveFunctions) {
  AnalysisSession S(makeDefaultLattice());
  ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
  S.analyze();

  // Add a function (and a call edge to it from caller_a).
  Module Edited = parseProgram(kTwoIslandAsm);
  Function NewFn;
  NewFn.Name = "new_leaf";
  {
    Instr I;
    I.Op = Opcode::MovImm;
    I.Dst = Reg::Eax;
    I.Imm = 42;
    NewFn.Body.push_back(I);
    Instr R;
    R.Op = Opcode::Ret;
    NewFn.Body.push_back(R);
  }
  uint32_t NewId = Edited.addFunction(NewFn);
  {
    uint32_t CallerA = *Edited.findFunction("caller_a");
    Instr C;
    C.Op = Opcode::Call;
    C.Target = NewId;
    auto &Body = Edited.Funcs[CallerA].Body;
    Body.insert(Body.end() - 1, C);
  }
  S.updateModule(Edited);
  S.analyze();
  EXPECT_EQ(renderSession(S), freshRender(Edited));
  EXPECT_GE(S.report()->Stats.SccsReused, 2u); // the b-island

  // Remove the function again (and the call).
  Module Back = parseProgram(kTwoIslandAsm);
  S.updateModule(Back);
  S.analyze();
  EXPECT_EQ(renderSession(S), freshRender(Back));
  EXPECT_GE(S.report()->Stats.SccsReused, 2u);
}

TEST(SessionTest, GoldenCorpusIncrementalIdentity) {
  for (const fs::path &P : corpus()) {
    std::string Text = slurp(P);
    AnalysisSession S(makeDefaultLattice());
    ASSERT_TRUE(S.loadModuleText(Text)) << P;
    S.analyze();
    std::string First = renderSession(S);
    size_t FirstSimplified = S.report()->Stats.SccsSimplified;

    // Invalidate each function in turn; every re-analysis must be
    // byte-identical and must simplify no more than the fresh run.
    for (uint32_t F = 0; F < S.module().Funcs.size(); ++F) {
      if (S.module().Funcs[F].IsExternal)
        continue;
      ASSERT_TRUE(S.invalidate(F));
      S.analyze();
      EXPECT_EQ(renderSession(S), First) << P << " fn " << F;
      EXPECT_LE(S.report()->Stats.SccsSimplified, FirstSimplified) << P;
    }
  }
}

TEST(SessionTest, TakeReportResetsQueryState) {
  AnalysisSession S(makeDefaultLattice());
  ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
  S.analyze();
  TypeReport R = S.takeReport();
  EXPECT_FALSE(R.Funcs.empty());
  EXPECT_EQ(S.prototypeOf("leaf_a").Status, TypeQueryStatus::NotAnalyzed);
  // History is kept: the next analyze is still incremental.
  S.analyze();
  EXPECT_TRUE(S.report()->Stats.IncrementalRun);
  EXPECT_EQ(S.report()->Stats.SccsSimplified, 0u);
}

TEST(SessionTest, InvalidateReplaysGenerationFromCache) {
  // invalidate() forces the SCC cone to re-run, but nothing actually
  // changed — the regeneration should come entirely from the session's
  // generation cache (PR 4) and reproduce the previous bytes.
  AnalysisSession S(makeDefaultLattice());
  S.loadModule(parseProgram(R"(
fn leaf:
  load eax, [esp+4]
  load eax, [eax+0]
  ret
fn top:
  load eax, [esp+4]
  push eax
  call leaf
  add esp, 4
  ret
)"));
  S.analyze();
  std::string First = renderSession(S);
  EXPECT_GT(S.report()->Stats.GenCacheMisses, 0u) << "first run is cold";

  ASSERT_TRUE(S.invalidate("top"));
  S.analyze();
  EXPECT_EQ(renderSession(S), First);
  EXPECT_GT(S.report()->Stats.GenCacheHits, 0u)
      << "unchanged invalidated SCC must replay its generation";
  EXPECT_EQ(S.report()->Stats.GenCacheMisses, 0u);
}

TEST(SessionTest, StoreWarmRunResolvesNamesThroughThePoolBinding) {
  // Store payloads carry names as pool ids; a warm run batch-interns the
  // pool once and every store decode resolves names through the
  // translation table (PoolBindHits) instead of hashing strings. Reports
  // stay byte-identical with the cold run throughout.
  namespace fs2 = std::filesystem;
  fs2::path Dir = fs2::temp_directory_path() / "retypd_session_poolbind";
  fs2::remove_all(Dir);

  std::string Baseline;
  {
    SessionOptions Opts;
    Opts.StoreDir = Dir.string();
    AnalysisSession S(makeDefaultLattice(), Opts);
    ASSERT_TRUE(S.storeError().empty()) << S.storeError();
    ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
    S.analyze();
    Baseline = renderSession(S);
  }
  {
    SessionOptions Opts;
    Opts.StoreDir = Dir.string();
    AnalysisSession S(makeDefaultLattice(), Opts);
    ASSERT_TRUE(S.storeError().empty()) << S.storeError();
    ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
    EventCounters::reset();
    S.analyze();
    EXPECT_EQ(renderSession(S), Baseline);
    EXPECT_GT(S.report()->Stats.PoolBindHits, 0u)
        << "warm store decodes did not use the pool translation table";
    EXPECT_GT(EventCounters::PoolBinds.load(), 0u)
        << "the pool was never batch-interned";
    EXPECT_EQ(EventCounters::PoolBindHits.load(),
              S.report()->Stats.PoolBindHits);
  }
  fs2::remove_all(Dir);
}

TEST(SessionTest, StoreDirOptionJournalsAndReplays) {
  namespace fs2 = std::filesystem;
  fs2::path Dir = fs2::temp_directory_path() / "retypd_session_store";
  fs2::remove_all(Dir);

  std::string Baseline;
  {
    SessionOptions Opts;
    Opts.StoreDir = Dir.string();
    AnalysisSession S(makeDefaultLattice(), Opts);
    ASSERT_TRUE(S.storeError().empty()) << S.storeError();
    ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
    S.analyze();
    Baseline = renderSession(S);
    EXPECT_GT(S.report()->Stats.StoreAppends, 0u)
        << "analyze() did not journal its artifacts";
  }
  // A second session (second process) over the same directory warm-runs
  // entirely from the store, byte-identically.
  {
    SessionOptions Opts;
    Opts.StoreDir = Dir.string();
    AnalysisSession S(makeDefaultLattice(), Opts);
    ASSERT_TRUE(S.storeError().empty()) << S.storeError();
    ASSERT_TRUE(S.loadModuleText(kTwoIslandAsm));
    EventCounters::reset();
    S.analyze();
    EXPECT_EQ(renderSession(S), Baseline);
    EXPECT_GT(S.report()->Stats.StoreHits, 0u);
    EXPECT_EQ(S.report()->Stats.CacheMisses, 0u);
    EXPECT_EQ(EventCounters::StorePayloadCopies.load(), 0u);
    EXPECT_EQ(S.report()->Stats.StoreAppends, 0u)
        << "identical payloads must not be re-journaled";
  }
  fs2::remove_all(Dir);
}
