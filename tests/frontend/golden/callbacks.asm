; Golden: indirect calls through a stored function pointer.
; apply loads a callback out of a handler struct and invokes it on the
; struct's payload; install writes a concrete handler into the struct.
extern close
fn do_close:
  load eax, [esp+4]
  push eax
  call close
  add esp, 4
  ret
fn apply:
  load edx, [esp+4]
  load ecx, [edx+0]
  load eax, [edx+4]
  push eax
  calli ecx
  add esp, 4
  ret
fn use:
  load edx, [esp+4]
  push edx
  call apply
  add esp, 4
  ret
