; Golden: a diamond-shaped call graph four waves deep — exercises the
; SCC wavefront: get_field is shared by two mid-level helpers that a
; single root calls, so the middle wave holds two independent SCCs that
; the parallel pipeline summarizes concurrently.
extern close
fn get_field:
  load edx, [esp+4]
  load eax, [edx+4]
  ret
fn left:
  load edx, [esp+4]
  push edx
  call get_field
  add esp, 4
  push eax
  call close
  add esp, 4
  ret
fn right:
  load edx, [esp+4]
  load ecx, [edx+0]
  push ecx
  call get_field
  add esp, 4
  ret
fn root:
  load edx, [esp+4]
  push edx
  call left
  add esp, 4
  load edx, [esp+4]
  push edx
  call right
  add esp, 4
  ret
