; Golden: file-descriptor pipeline with a global. Semantic lattice tags
; (#FileDescriptor, #SuccessZ) flow from the known open/read/close
; schemes through user code and a global slot.
global last_fd, 4
extern open
extern read
extern close
fn open_log:
  push 0
  load eax, [esp+8]
  push eax
  call open
  add esp, 8
  store [@last_fd], eax
  ret
fn pump:
  load edx, [esp+4]
  load ecx, [@last_fd]
  push 16
  push edx
  push ecx
  call read
  add esp, 12
  ret
fn shutdown:
  load eax, [@last_fd]
  push eax
  call close
  add esp, 4
  ret
