; Golden: recursive linked-list traversal (paper Figure 2).
; close_last walks `struct LL { LL *next; int fd; }` and closes the
; last file descriptor; sum_fds accumulates every fd on the list.
extern close
fn close_last:
  load edx, [esp+4]
  jmp check
advance:
  mov edx, eax
check:
  load eax, [edx+0]
  test eax, eax
  jnz advance
  load eax, [edx+4]
  push eax
  call close
  add esp, 4
  ret
fn sum_fds:
  load edx, [esp+4]
  mov esi, 0
loop:
  test edx, edx
  jz done
  load eax, [edx+4]
  add esi, eax
  load edx, [edx+0]
  jmp loop
done:
  mov eax, esi
  ret
