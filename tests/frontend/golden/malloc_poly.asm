; Golden: malloc/free polymorphism. wrap_alloc is a malloc wrapper whose
; forall-quantified return specializes per callsite (Example 4.3): one
; caller stores ints through it, the other stores pointers; free_cell
; remains polymorphic in its argument.
extern malloc
extern free
fn wrap_alloc:
  load eax, [esp+4]
  push eax
  call malloc
  add esp, 4
  ret
fn free_cell:
  load eax, [esp+4]
  push eax
  call free
  add esp, 4
  ret
fn int_user:
  push 4
  call wrap_alloc
  add esp, 4
  mov esi, eax
  load eax, [esp+4]
  store [esi], eax
  push esi
  call free_cell
  add esp, 4
  ret
fn ptr_user:
  push 8
  call wrap_alloc
  add esp, 4
  mov edi, eax
  push 4
  call wrap_alloc
  add esp, 4
  store [edi], eax
  push edi
  call free_cell
  add esp, 4
  ret
