; Golden: mutually recursive SCCs. even/odd recurse on an integer;
; walk_a/walk_b alternate over a two-field linked structure, so the
; whole SCC shares one recursive constraint set (Algorithm F.1 treats
; SCC mates monomorphically).
fn even:
  load eax, [esp+4]
  test eax, eax
  jnz go_odd
  mov eax, 1
  ret
go_odd:
  sub eax, 1
  push eax
  call odd
  add esp, 4
  ret
fn odd:
  load eax, [esp+4]
  test eax, eax
  jnz go_even
  mov eax, 0
  ret
go_even:
  sub eax, 1
  push eax
  call even
  add esp, 4
  ret
fn walk_a:
  load edx, [esp+4]
  test edx, edx
  jnz recurse_a
  mov eax, 0
  ret
recurse_a:
  load eax, [edx+0]
  push eax
  call walk_b
  add esp, 4
  add eax, 1
  ret
fn walk_b:
  load edx, [esp+4]
  test edx, edx
  jnz recurse_b
  mov eax, 0
  ret
recurse_b:
  load eax, [edx+4]
  push eax
  call walk_a
  add esp, 4
  add eax, 1
  ret
