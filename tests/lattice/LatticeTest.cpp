//===- LatticeTest.cpp - Λ lattice unit tests ------------------------------===//

#include "lattice/Lattice.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

Lattice small() {
  LatticeBuilder B;
  LatticeElem Num = B.add("num", Lattice::Top, /*Numeric=*/true);
  B.add("int", Num);
  B.add("uint", Num);
  B.add("str", Lattice::Top);
  Lattice L;
  std::string Err;
  EXPECT_TRUE(B.build(L, Err)) << Err;
  return L;
}

} // namespace

TEST(Lattice, TopBottomOrder) {
  Lattice L = small();
  for (LatticeElem E = 0; E < L.size(); ++E) {
    EXPECT_TRUE(L.leq(E, Lattice::Top));
    EXPECT_TRUE(L.leq(Lattice::Bottom, E));
  }
}

TEST(Lattice, JoinOfSiblingsIsParent) {
  Lattice L = small();
  LatticeElem I = *L.lookup("int");
  LatticeElem U = *L.lookup("uint");
  EXPECT_EQ(L.join(I, U), *L.lookup("num"));
  EXPECT_EQ(L.meet(I, U), Lattice::Bottom);
}

TEST(Lattice, JoinAcrossFamiliesIsTop) {
  Lattice L = small();
  EXPECT_EQ(L.join(*L.lookup("int"), *L.lookup("str")), Lattice::Top);
}

TEST(Lattice, MeetWithAncestorIsSelf) {
  Lattice L = small();
  LatticeElem I = *L.lookup("int");
  LatticeElem N = *L.lookup("num");
  EXPECT_EQ(L.meet(I, N), I);
  EXPECT_EQ(L.join(I, N), N);
}

TEST(Lattice, NumericFlagInherited) {
  Lattice L = small();
  EXPECT_TRUE(L.isNumeric(*L.lookup("int")));
  EXPECT_TRUE(L.isNumeric(*L.lookup("num")));
  EXPECT_FALSE(L.isNumeric(*L.lookup("str")));
  EXPECT_FALSE(L.isNumeric(Lattice::Top));
}

TEST(Lattice, DuplicateNameRejected) {
  LatticeBuilder B;
  B.add("x", Lattice::Top);
  B.add("x", Lattice::Top);
  Lattice L;
  std::string Err;
  EXPECT_FALSE(B.build(L, Err));
}

TEST(Lattice, NonLatticeDiamondRejected) {
  // a, b incomparable; c and d both below a and b: no unique meet(a, b).
  LatticeBuilder B;
  LatticeElem A = B.add("a", Lattice::Top);
  LatticeElem Bb = B.add("b", Lattice::Top);
  B.addMultiParent("c", {A, Bb});
  B.addMultiParent("d", {A, Bb});
  Lattice L;
  std::string Err;
  EXPECT_FALSE(B.build(L, Err));
  EXPECT_NE(Err.find("meet"), std::string::npos);
}

TEST(Lattice, DefaultLatticeIsValidAndRich) {
  Lattice L = makeDefaultLattice();
  EXPECT_GE(L.size(), 30u);
  ASSERT_TRUE(L.lookup("#FileDescriptor").has_value());
  ASSERT_TRUE(L.lookup("#SuccessZ").has_value());
  ASSERT_TRUE(L.lookup("int").has_value());
  EXPECT_TRUE(L.leq(*L.lookup("#FileDescriptor"), *L.lookup("int")));
  EXPECT_TRUE(L.isTag(*L.lookup("#SuccessZ")));
  EXPECT_FALSE(L.isTag(*L.lookup("int")));
  // HGDI handles form their own hierarchy (§2.8).
  EXPECT_TRUE(L.leq(*L.lookup("HBRUSH"), *L.lookup("HGDI")));
  EXPECT_TRUE(L.leq(*L.lookup("HGDI"), *L.lookup("HANDLE")));
  EXPECT_EQ(L.join(*L.lookup("HBRUSH"), *L.lookup("HPEN")),
            *L.lookup("HGDI"));
}

TEST(Lattice, HeightIsPositive) {
  Lattice L = makeDefaultLattice();
  EXPECT_GE(L.height(), 4u);
}
