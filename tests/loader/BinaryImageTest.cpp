//===- BinaryImageTest.cpp - encode/decode/disassembly tests -----------------===//

#include "loader/BinaryImage.h"
#include "mir/AsmParser.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

Module parseOk(const std::string &Text) {
  AsmParser P;
  auto M = P.parse(Text);
  if (!M) {
    ADD_FAILURE() << P.error();
    return Module();
  }
  return *M;
}

const char *TwoFuncs = R"(
extern close
fn main:
  push 5
  call helper
  add esp, 4
  halt
fn helper:
  load eax, [esp+4]
  push eax
  call close
  add esp, 4
  ret
)";

} // namespace

TEST(BinaryImage, RoundTripPreservesInstructions) {
  Module M = parseOk(TwoFuncs);
  M.EntryFunc = *M.findFunction("main");
  EncodedImage Img = encodeModule(M);
  DecodeReport Rep;
  auto M2 = decodeImage(Img.Bytes, Rep);
  ASSERT_TRUE(M2) << Rep.Error;
  EXPECT_EQ(Rep.FunctionsDiscovered, 2u);
  EXPECT_EQ(Rep.ImportsResolved, 1u);
  EXPECT_EQ(Rep.BadInstructions, 0u);

  // Names are stripped: discovered functions get sub_<addr> names, imports
  // keep theirs.
  EXPECT_TRUE(M2->findFunction("close").has_value());
  EXPECT_FALSE(M2->findFunction("main").has_value());

  // The entry function's instruction stream round-trips.
  const Function &Main2 = M2->Funcs[M2->EntryFunc];
  const Function &Main = M.Funcs[M.EntryFunc];
  ASSERT_EQ(Main2.Body.size(), Main.Body.size());
  for (size_t I = 0; I < Main.Body.size(); ++I)
    EXPECT_EQ(Main2.Body[I].Op, Main.Body[I].Op) << "instr " << I;
}

TEST(BinaryImage, SymbolMapLocatesFunctions) {
  Module M = parseOk(TwoFuncs);
  M.EntryFunc = *M.findFunction("main");
  EncodedImage Img = encodeModule(M);
  DecodeReport Rep;
  auto M2 = decodeImage(Img.Bytes, Rep);
  ASSERT_TRUE(M2);
  // The ground-truth side channel can find the decoded helper by address.
  uint32_t HelperAddr = Img.FunctionAddrs.at("helper");
  std::string Expected = "sub_" + std::to_string(HelperAddr);
  EXPECT_TRUE(M2->findFunction(Expected).has_value());
}

TEST(BinaryImage, BranchTargetsRelocate) {
  Module M = parseOk(R"(
fn main:
  mov eax, 3
loop:
  sub eax, 1
  cmp eax, 0
  jnz loop
  halt
)");
  M.EntryFunc = 0;
  EncodedImage Img = encodeModule(M);
  DecodeReport Rep;
  auto M2 = decodeImage(Img.Bytes, Rep);
  ASSERT_TRUE(M2) << Rep.Error;
  const Function &F = M2->Funcs[M2->EntryFunc];
  ASSERT_EQ(F.Body.size(), 5u);
  EXPECT_EQ(F.Body[3].Op, Opcode::Jcc);
  EXPECT_EQ(F.Body[3].Target, 1u);
}

TEST(BinaryImage, GlobalReferencesSurvive) {
  Module M = parseOk(R"(
global counter, 4
fn main:
  mov eax, @counter
  load ebx, [@counter]
  store [@counter], ebx
  halt
)");
  M.EntryFunc = 0;
  EncodedImage Img = encodeModule(M);
  DecodeReport Rep;
  auto M2 = decodeImage(Img.Bytes, Rep);
  ASSERT_TRUE(M2) << Rep.Error;
  const Function &F = M2->Funcs[M2->EntryFunc];
  EXPECT_EQ(F.Body[0].Op, Opcode::MovGlobal);
  EXPECT_TRUE(F.Body[1].Mem.isGlobal());
  EXPECT_TRUE(F.Body[2].Mem.isGlobal());
  // Both references resolve to the same synthesized symbol.
  EXPECT_EQ(F.Body[1].Mem.GlobalSym, F.Body[2].Mem.GlobalSym);
}

TEST(BinaryImage, RejectsBadMagic) {
  std::vector<uint8_t> Junk(64, 0xab);
  DecodeReport Rep;
  EXPECT_FALSE(decodeImage(Junk, Rep));
  EXPECT_FALSE(Rep.Error.empty());
}

TEST(BinaryImage, RejectsTruncatedImage) {
  Module M = parseOk("fn main:\n  halt\n");
  M.EntryFunc = 0;
  EncodedImage Img = encodeModule(M);
  Img.Bytes.resize(Img.Bytes.size() - 8);
  DecodeReport Rep;
  EXPECT_FALSE(decodeImage(Img.Bytes, Rep));
}

TEST(BinaryImage, SurvivesCorruptedInstruction) {
  // Corrupt the opcode of a reachable instruction: decoding must not crash
  // and must report the damage (§2.5: disassembly failures are a fact of
  // life).
  Module M = parseOk(TwoFuncs);
  M.EntryFunc = *M.findFunction("main");
  EncodedImage Img = encodeModule(M);
  // Find the code section: header(20) + import entry (8 + 5 name bytes).
  size_t CodeOff = 20 + 8 + 5;
  Img.Bytes[CodeOff + 2 * ImageLayout::InstrBytes] = 0xff; // bad opcode
  DecodeReport Rep;
  auto M2 = decodeImage(Img.Bytes, Rep);
  ASSERT_TRUE(M2);
  EXPECT_GT(Rep.BadInstructions, 0u);
}

TEST(BinaryImage, UnreachableFunctionsAreNotDiscovered) {
  Module M = parseOk(R"(
fn main:
  halt
fn dead:
  ret
)");
  M.EntryFunc = 0;
  EncodedImage Img = encodeModule(M);
  DecodeReport Rep;
  auto M2 = decodeImage(Img.Bytes, Rep);
  ASSERT_TRUE(M2);
  EXPECT_EQ(Rep.FunctionsDiscovered, 1u);
}
