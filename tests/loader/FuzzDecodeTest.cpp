//===- FuzzDecodeTest.cpp - Failure-injection sweeps for the loader -----------===//
//
// §2.5: "we can never assume that our reconstructed program representation
// will be perfectly correct." These parameterized sweeps corrupt encoded
// images in randomized ways and require the decoder (and the downstream
// pipeline) to degrade gracefully: report damage, never crash.
//
//===----------------------------------------------------------------------===//

#include "frontend/Pipeline.h"
#include "loader/BinaryImage.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

#include <random>

using namespace retypd;

class FuzzDecode : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzDecode, CorruptedImagesNeverCrashDecode) {
  SynthGenerator Gen;
  SynthOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetInstructions = 120;
  SynthProgram P = Gen.generate("fuzz", Opts);
  EncodedImage Img = encodeModule(P.M);

  std::mt19937 Rng(GetParam() * 7 + 1);
  for (int Round = 0; Round < 40; ++Round) {
    std::vector<uint8_t> Bytes = Img.Bytes;
    std::uniform_int_distribution<size_t> Pos(0, Bytes.size() - 1);
    std::uniform_int_distribution<int> Val(0, 255);
    // Flip up to 8 random bytes.
    for (int K = 0; K < 8; ++K)
      Bytes[Pos(Rng)] = static_cast<uint8_t>(Val(Rng));

    DecodeReport Rep;
    auto M = decodeImage(Bytes, Rep);
    // Either a clean refusal or a (possibly damaged) module; both fine —
    // the property is "no crash, no unbounded work".
    if (M) {
      EXPECT_LE(M->Funcs.size(), 100000u);
    } else {
      EXPECT_FALSE(Rep.Error.empty());
    }
  }
}

TEST_P(FuzzDecode, TruncationsNeverCrashDecode) {
  SynthGenerator Gen;
  SynthOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetInstructions = 100;
  SynthProgram P = Gen.generate("fuzz", Opts);
  EncodedImage Img = encodeModule(P.M);

  for (size_t Len : {size_t(0), size_t(4), size_t(19), size_t(21),
                     Img.Bytes.size() / 2, Img.Bytes.size() - 1}) {
    std::vector<uint8_t> Bytes(Img.Bytes.begin(), Img.Bytes.begin() + Len);
    DecodeReport Rep;
    auto M = decodeImage(Bytes, Rep);
    if (!M) {
      EXPECT_FALSE(Rep.Error.empty());
    }
  }
}

TEST_P(FuzzDecode, PipelineSurvivesDamagedModules) {
  // Decode a code-section-corrupted image and push whatever comes out
  // through the full inference pipeline: bad IR must not crash inference
  // (§2.5's central demand).
  SynthGenerator Gen;
  SynthOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetInstructions = 120;
  SynthProgram P = Gen.generate("fuzz", Opts);
  EncodedImage Img = encodeModule(P.M);

  std::mt19937 Rng(GetParam() * 13 + 5);
  // Corrupt only the code section so headers/imports stay decodable.
  size_t CodeStart = Img.Bytes.size() / 3;
  std::uniform_int_distribution<size_t> Pos(CodeStart, Img.Bytes.size() - 1);
  std::uniform_int_distribution<int> Val(0, 255);
  for (int K = 0; K < 32; ++K)
    Img.Bytes[Pos(Rng)] = static_cast<uint8_t>(Val(Rng));

  DecodeReport Rep;
  auto M = decodeImage(Img.Bytes, Rep);
  if (!M)
    return; // refused outright: fine
  Lattice Lat = makeDefaultLattice();
  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(*M);
  // Whatever was recovered got a type.
  for (const auto &[F, T] : R.Funcs)
    EXPECT_TRUE(T.CType != NoCType || M->Funcs[F].Body.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u, 36u));
