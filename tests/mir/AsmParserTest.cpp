//===- AsmParserTest.cpp - Assembly front-end tests -------------------------===//

#include "mir/AsmParser.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

Module parseOk(const std::string &Text) {
  AsmParser P;
  auto M = P.parse(Text);
  if (!M) {
    ADD_FAILURE() << P.error();
    return Module();
  }
  return *M;
}

// The close_last listing from Figure 2, in our assembly syntax.
const char *CloseLast = R"(
extern close
fn close_last:
  load edx, [esp+4]
  jmp check
advance:
  mov edx, eax
check:
  load eax, [edx+0]
  test eax, eax
  jnz advance
  load eax, [edx+4]
  push eax
  call close
  add esp, 4
  ret
)";

} // namespace

TEST(AsmParser, ParsesCloseLast) {
  Module M = parseOk(CloseLast);
  ASSERT_EQ(M.Funcs.size(), 2u);
  EXPECT_TRUE(M.Funcs[0].IsExternal);
  EXPECT_EQ(M.Funcs[0].Name, "close");
  const Function &F = M.Funcs[1];
  EXPECT_EQ(F.Name, "close_last");
  ASSERT_EQ(F.Body.size(), 11u);
  EXPECT_EQ(F.Body[0].Op, Opcode::Load);
  EXPECT_EQ(F.Body[0].Mem.Base, Reg::Esp);
  EXPECT_EQ(F.Body[0].Mem.Disp, 4);
  EXPECT_EQ(F.Body[1].Op, Opcode::Jmp);
  EXPECT_EQ(F.Body[1].Target, 3u); // "check" label
  EXPECT_EQ(F.Body[5].Op, Opcode::Jcc);
  EXPECT_EQ(F.Body[5].CC, Cond::Nz);
  EXPECT_EQ(F.Body[5].Target, 2u); // "advance"
  EXPECT_EQ(F.Body[8].Op, Opcode::Call);
  EXPECT_EQ(F.Body[8].Target, 0u); // close
}

TEST(AsmParser, SizedMemoryOps) {
  Module M = parseOk(R"(
fn f:
  load1 eax, [ebx+2]
  store2 [ebx-4], eax
  load8 ecx, [esp]
  ret
)");
  const Function &F = M.Funcs[0];
  EXPECT_EQ(F.Body[0].Mem.Size, 1);
  EXPECT_EQ(F.Body[1].Mem.Size, 2);
  EXPECT_EQ(F.Body[1].Mem.Disp, -4);
  EXPECT_EQ(F.Body[2].Mem.Size, 8);
  EXPECT_EQ(F.Body[2].Mem.Disp, 0);
}

TEST(AsmParser, GlobalsAndAddressOf) {
  Module M = parseOk(R"(
global table, 64
fn f:
  mov eax, @table
  load ebx, [@table+8]
  store [@table], ebx
  ret
)");
  ASSERT_EQ(M.Globals.size(), 1u);
  const Function &F = M.Funcs[0];
  EXPECT_EQ(F.Body[0].Op, Opcode::MovGlobal);
  EXPECT_EQ(F.Body[0].Target, 0u);
  EXPECT_TRUE(F.Body[1].Mem.isGlobal());
  EXPECT_EQ(F.Body[1].Mem.Disp, 8);
  EXPECT_TRUE(F.Body[2].Mem.isGlobal());
}

TEST(AsmParser, ImmediateForms) {
  Module M = parseOk(R"(
fn f:
  mov eax, -7
  mov ebx, 0x10
  add eax, 4
  sub esp, 8
  cmp eax, 0
  push 42
  store [esp], 3
  ret
)");
  const Function &F = M.Funcs[0];
  EXPECT_EQ(F.Body[0].Op, Opcode::MovImm);
  EXPECT_EQ(F.Body[0].Imm, -7);
  EXPECT_EQ(F.Body[1].Imm, 16);
  EXPECT_EQ(F.Body[2].Op, Opcode::AddImm);
  EXPECT_EQ(F.Body[4].Op, Opcode::CmpImm);
  EXPECT_EQ(F.Body[5].Op, Opcode::PushImm);
  EXPECT_EQ(F.Body[6].Op, Opcode::StoreImm);
}

TEST(AsmParser, ForwardCallsResolve) {
  Module M = parseOk(R"(
fn caller:
  call callee
  ret
fn callee:
  ret
)");
  EXPECT_EQ(M.Funcs[0].Body[0].Target, 1u);
}

TEST(AsmParser, ReportsUnknownLabel) {
  AsmParser P;
  EXPECT_FALSE(P.parse("fn f:\n  jmp nowhere\n  ret\n"));
  EXPECT_NE(P.error().find("unknown label"), std::string::npos);
}

TEST(AsmParser, ReportsUnknownMnemonic) {
  AsmParser P;
  EXPECT_FALSE(P.parse("fn f:\n  frob eax\n"));
  EXPECT_NE(P.error().find("unknown mnemonic"), std::string::npos);
}

TEST(AsmParser, ReportsUnknownCallee) {
  AsmParser P;
  EXPECT_FALSE(P.parse("fn f:\n  call missing\n  ret\n"));
  EXPECT_NE(P.error().find("unknown function"), std::string::npos);
}

TEST(AsmParser, PrinterRoundTrips) {
  Module M = parseOk(CloseLast);
  std::string Printed = moduleStr(M);
  AsmParser P;
  auto M2 = P.parse(Printed);
  ASSERT_TRUE(M2) << P.error() << "\n" << Printed;
  ASSERT_EQ(M2->Funcs.size(), M.Funcs.size());
  for (size_t F = 0; F < M.Funcs.size(); ++F) {
    ASSERT_EQ(M2->Funcs[F].Body.size(), M.Funcs[F].Body.size());
    for (size_t I = 0; I < M.Funcs[F].Body.size(); ++I) {
      EXPECT_EQ(M2->Funcs[F].Body[I].Op, M.Funcs[F].Body[I].Op);
      EXPECT_EQ(M2->Funcs[F].Body[I].Target, M.Funcs[F].Body[I].Target);
    }
  }
}

TEST(AsmParser, InstructionCount) {
  Module M = parseOk(CloseLast);
  EXPECT_EQ(M.instructionCount(), 11u);
}
