//===- CfgTest.cpp - CFG construction tests ----------------------------------===//

#include "mir/AsmParser.h"
#include "mir/Cfg.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

Function parseFn(const std::string &Text) {
  AsmParser P;
  auto M = P.parse(Text);
  if (!M || M->Funcs.empty()) {
    ADD_FAILURE() << P.error();
    return Function();
  }
  return M->Funcs.back();
}

} // namespace

TEST(Cfg, StraightLineIsOneBlock) {
  Function F = parseFn(R"(
fn f:
  mov eax, 1
  add eax, 2
  ret
)");
  Cfg G(F);
  EXPECT_EQ(G.size(), 1u);
  EXPECT_TRUE(G.blocks()[0].Succs.empty());
}

TEST(Cfg, DiamondHasFourBlocks) {
  Function F = parseFn(R"(
fn f:
  cmp eax, 0
  jz other
  mov ebx, 1
  jmp join
other:
  mov ebx, 2
join:
  ret
)");
  Cfg G(F);
  ASSERT_EQ(G.size(), 4u);
  EXPECT_EQ(G.blocks()[0].Succs.size(), 2u);
  EXPECT_EQ(G.blocks()[3].Preds.size(), 2u);
}

TEST(Cfg, LoopBackEdge) {
  Function F = parseFn(R"(
fn f:
loop:
  sub eax, 1
  cmp eax, 0
  jnz loop
  ret
)");
  Cfg G(F);
  ASSERT_EQ(G.size(), 2u);
  // Block 0 branches to itself and to the exit block.
  const BasicBlock &B0 = G.blocks()[0];
  EXPECT_EQ(B0.Succs.size(), 2u);
  EXPECT_NE(std::find(B0.Succs.begin(), B0.Succs.end(), 0u), B0.Succs.end());
}

TEST(Cfg, RpoStartsAtEntry) {
  Function F = parseFn(R"(
fn f:
  jmp skip
  mov eax, 1
skip:
  ret
)");
  Cfg G(F);
  ASSERT_FALSE(G.rpo().empty());
  EXPECT_EQ(G.rpo()[0], 0u);
}

TEST(Cfg, BlockOfMapsInstructions) {
  Function F = parseFn(R"(
fn f:
  mov eax, 1
  jmp next
next:
  mov ebx, 2
  ret
)");
  Cfg G(F);
  EXPECT_EQ(G.blockOf(0), G.blockOf(1));
  EXPECT_NE(G.blockOf(1), G.blockOf(2));
}

TEST(Cfg, UnreachableCodeGetsNoRpoEntry) {
  Function F = parseFn(R"(
fn f:
  ret
  mov eax, 1
  ret
)");
  Cfg G(F);
  EXPECT_LT(G.rpo().size(), G.size());
}

TEST(Cfg, EmptyFunction) {
  Function F;
  Cfg G(F);
  EXPECT_EQ(G.size(), 1u);
}
