//===- ValidatorTest.cpp - Module validation tests -----------------------------===//

#include "mir/AsmParser.h"
#include "mir/Validator.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

Module parseOk(const std::string &Text) {
  AsmParser P;
  auto M = P.parse(Text);
  if (!M) {
    ADD_FAILURE() << P.error();
    return Module();
  }
  return *M;
}

bool hasError(const std::vector<ValidationIssue> &Issues) {
  for (const ValidationIssue &I : Issues)
    if (I.Sev == ValidationIssue::Severity::Error)
      return true;
  return false;
}

} // namespace

TEST(Validator, CleanModulePasses) {
  Module M = parseOk(R"(
extern close
fn f:
  load eax, [esp+4]
  push eax
  call close
  add esp, 4
  ret
)");
  EXPECT_TRUE(isStructurallyValid(M));
}

TEST(Validator, BranchOutOfRangeIsError) {
  Module M = parseOk("fn f:\n  jmp end\nend:\n  ret\n");
  M.Funcs[0].Body[0].Target = 99;
  EXPECT_FALSE(isStructurallyValid(M));
  EXPECT_TRUE(hasError(validateModule(M)));
}

TEST(Validator, CallOutOfRangeIsError) {
  Module M = parseOk("fn f:\n  call f\n  ret\n");
  M.Funcs[0].Body[0].Target = 17;
  EXPECT_FALSE(isStructurallyValid(M));
}

TEST(Validator, BadMemSizeIsError) {
  Module M = parseOk("fn f:\n  load eax, [esp+4]\n  ret\n");
  M.Funcs[0].Body[0].Mem.Size = 3;
  EXPECT_FALSE(isStructurallyValid(M));
}

TEST(Validator, FallOffEndIsWarning) {
  Module M = parseOk("fn f:\n  mov eax, 1\n");
  auto Issues = validateModule(M);
  ASSERT_FALSE(Issues.empty());
  EXPECT_EQ(Issues[0].Sev, ValidationIssue::Severity::Warning);
  EXPECT_TRUE(isStructurallyValid(M)); // warnings only
}

TEST(Validator, TrailingConditionalIsError) {
  Module M = parseOk("fn f:\nl:\n  cmp eax, 0\n  jz l\n");
  EXPECT_FALSE(isStructurallyValid(M));
}

TEST(Validator, UnreachableBlockIsWarning) {
  Module M = parseOk("fn f:\n  ret\n  mov eax, 1\n  ret\n");
  auto Issues = validateModule(M);
  bool SawUnreachable = false;
  for (const ValidationIssue &I : Issues)
    SawUnreachable |= I.Message == "unreachable block";
  EXPECT_TRUE(SawUnreachable);
}

TEST(Validator, ExternalWithBodyIsError) {
  Module M = parseOk("extern close\nfn f:\n  ret\n");
  M.Funcs[0].Body.push_back(Instr{});
  EXPECT_FALSE(isStructurallyValid(M));
}
