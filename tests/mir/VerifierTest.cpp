//===- VerifierTest.cpp - Structural module verifier ------------------------===//
//
// One malformed module per verifier rule: each test builds the smallest
// module violating exactly one structural invariant and asserts the
// verifier reports it (and nothing unrelated). A final block checks the
// diagnostic renderer: AsmParser's line table turns verifier findings on
// parsed text into file:line positions.
//
//===----------------------------------------------------------------------===//

#include "mir/AsmParser.h"
#include "mir/Verifier.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

/// A minimal well-formed module: one function, `ret`.
Module tiny() {
  Module M;
  Function F;
  F.Name = "f";
  Instr Ret;
  Ret.Op = Opcode::Ret;
  F.Body.push_back(Ret);
  M.addFunction(std::move(F));
  return M;
}

/// True when some error message contains \p Needle.
bool hasError(const ModuleVerifyResult &R, const std::string &Needle) {
  for (const ModuleDiag &D : R.Errors)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(ModuleVerifierTest, CleanModulePasses) {
  Module M = tiny();
  ModuleVerifyResult R = verifyModule(M);
  EXPECT_TRUE(R.ok()) << renderModuleDiags(M, R);
}

TEST(ModuleVerifierTest, DuplicateFunctionName) {
  Module M = tiny();
  Function F2;
  F2.Name = "f"; // clashes; FuncByName silently keeps only one id
  Instr Ret;
  Ret.Op = Opcode::Ret;
  F2.Body.push_back(Ret);
  M.addFunction(std::move(F2));
  ModuleVerifyResult R = verifyModule(M);
  EXPECT_TRUE(hasError(R, "duplicate function name 'f'"));
}

TEST(ModuleVerifierTest, DuplicateGlobalName) {
  Module M = tiny();
  M.addGlobal({"g", 4});
  M.addGlobal({"g", 8});
  EXPECT_TRUE(hasError(verifyModule(M), "duplicate global name 'g'"));
}

TEST(ModuleVerifierTest, NameMapInconsistency) {
  Module M = tiny();
  M.FuncByName["f"] = 7; // dangling id
  EXPECT_TRUE(hasError(verifyModule(M),
                       "name map entry 'f' does not match its function"));
}

TEST(ModuleVerifierTest, FunctionMissingFromNameMap) {
  Module M = tiny();
  M.FuncByName.clear();
  EXPECT_TRUE(hasError(verifyModule(M), "missing from the name map"));
}

TEST(ModuleVerifierTest, EntryFunctionOutOfRange) {
  Module M = tiny();
  M.EntryFunc = 99;
  EXPECT_TRUE(hasError(verifyModule(M), "entry function id 99 out of range"));
}

TEST(ModuleVerifierTest, ExternalWithBody) {
  Module M = tiny();
  M.Funcs[0].IsExternal = true; // but keeps its ret
  EXPECT_TRUE(hasError(verifyModule(M), "external function 'f' has a body"));
}

TEST(ModuleVerifierTest, BadRegisterParameter) {
  Module M = tiny();
  M.Funcs[0].RegParams.push_back(Reg::None);
  EXPECT_TRUE(
      hasError(verifyModule(M), "register parameter of 'f' is not a register"));
}

TEST(ModuleVerifierTest, UnknownOpcode) {
  Module M = tiny();
  Instr Bad;
  Bad.Op = static_cast<Opcode>(200);
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Bad);
  EXPECT_TRUE(hasError(verifyModule(M), "unknown opcode 200"));
}

TEST(ModuleVerifierTest, RegisterOperandOutOfRange) {
  Module M = tiny();
  Instr Mov;
  Mov.Op = Opcode::Mov;
  Mov.Dst = static_cast<Reg>(42); // not even encodable as Reg
  Mov.Src = Reg::Eax;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Mov);
  EXPECT_TRUE(hasError(verifyModule(M), "register operand out of range"));
}

TEST(ModuleVerifierTest, MissingRequiredOperands) {
  Module M = tiny();
  Instr Mov; // mov with neither dst nor src
  Mov.Op = Opcode::Mov;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Mov);
  ModuleVerifyResult R = verifyModule(M);
  EXPECT_TRUE(hasError(R, "missing destination register"));
  EXPECT_TRUE(hasError(R, "missing source register"));
}

TEST(ModuleVerifierTest, BadMemorySize) {
  Module M = tiny();
  Instr Load;
  Load.Op = Opcode::Load;
  Load.Dst = Reg::Eax;
  Load.Mem.Base = Reg::Esp;
  Load.Mem.Size = 3;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Load);
  EXPECT_TRUE(hasError(verifyModule(M), "bad memory access size 3"));
}

TEST(ModuleVerifierTest, MemoryGlobalOutOfRange) {
  Module M = tiny();
  Instr Load;
  Load.Op = Opcode::Load;
  Load.Dst = Reg::Eax;
  Load.Mem.GlobalSym = 5; // no globals exist
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Load);
  EXPECT_TRUE(hasError(verifyModule(M), "references global #5"));
}

TEST(ModuleVerifierTest, MemoryWithoutBaseOrGlobal) {
  Module M = tiny();
  Instr Load;
  Load.Op = Opcode::Load;
  Load.Dst = Reg::Eax; // Mem stays Base=None, no global
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Load);
  EXPECT_TRUE(
      hasError(verifyModule(M), "neither base register nor global"));
}

TEST(ModuleVerifierTest, BranchTargetOutOfRange) {
  Module M = tiny();
  Instr Jmp;
  Jmp.Op = Opcode::Jmp;
  Jmp.Target = 100;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Jmp);
  EXPECT_TRUE(hasError(verifyModule(M), "branch target #100 out of range"));
}

TEST(ModuleVerifierTest, UnknownConditionCode) {
  Module M = tiny();
  Instr Jcc;
  Jcc.Op = Opcode::Jcc;
  Jcc.Target = 1; // the ret
  Jcc.CC = static_cast<Cond>(99);
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Jcc);
  EXPECT_TRUE(hasError(verifyModule(M), "unknown condition code"));
}

TEST(ModuleVerifierTest, UnknownCallTarget) {
  Module M = tiny();
  Instr Call;
  Call.Op = Opcode::Call;
  Call.Target = 9;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Call);
  EXPECT_TRUE(hasError(verifyModule(M), "unknown call target #9"));
}

TEST(ModuleVerifierTest, UnknownGlobalInMovGlobal) {
  Module M = tiny();
  Instr Mg;
  Mg.Op = Opcode::MovGlobal;
  Mg.Dst = Reg::Eax;
  Mg.Target = 3;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Mg);
  EXPECT_TRUE(hasError(verifyModule(M), "unknown global #3"));
}

TEST(ModuleVerifierTest, TrailingConditionalBranch) {
  Module M = tiny();
  Instr Jcc;
  Jcc.Op = Opcode::Jcc;
  Jcc.Target = 0;
  M.Funcs[0].Body.push_back(Jcc); // jcc is now the last instruction
  EXPECT_TRUE(
      hasError(verifyModule(M), "conditional branch falls off the end"));
}

TEST(ModuleVerifierTest, AllErrorsReportedNotJustFirst) {
  // Three independent violations in one module: every one must appear.
  Module M = tiny();
  Instr Call;
  Call.Op = Opcode::Call;
  Call.Target = 9;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Call);
  Instr Jmp;
  Jmp.Op = Opcode::Jmp;
  Jmp.Target = 100;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Jmp);
  M.EntryFunc = 50;
  ModuleVerifyResult R = verifyModule(M);
  EXPECT_GE(R.Errors.size(), 3u);
  EXPECT_TRUE(hasError(R, "unknown call target"));
  EXPECT_TRUE(hasError(R, "branch target #100"));
  EXPECT_TRUE(hasError(R, "entry function id 50"));
}

TEST(ModuleVerifierTest, RenderedDiagsUseParserLineTable) {
  // Parse a program whose only defect is post-parse structural (a jcc as
  // the final instruction); the diagnostic must carry the 1-based source
  // line of that instruction.
  AsmParser Parser;
  auto M = Parser.parse("fn f:\n"
                        "  nop\n"
                        "  jz top\n" // line 3; 'top' is instruction 0
                        "top:\n");
  // Some parsers may reject this outright; the rendering contract only
  // matters when the module parses.
  ASSERT_TRUE(M.has_value()) << Parser.error();
  ModuleVerifyResult R = verifyModule(*M);
  ASSERT_FALSE(R.ok());
  std::string Text =
      renderModuleDiags(*M, R, "prog.asm", &Parser.lineTable());
  EXPECT_NE(Text.find("prog.asm:3: error:"), std::string::npos) << Text;
}

TEST(ModuleVerifierTest, RenderedDiagsFallBackWithoutLineTable) {
  Module M = tiny();
  Instr Jmp;
  Jmp.Op = Opcode::Jmp;
  Jmp.Target = 100;
  M.Funcs[0].Body.insert(M.Funcs[0].Body.begin(), Jmp);
  std::string Text = renderModuleDiags(M, verifyModule(M));
  EXPECT_NE(Text.find("<module>: function 'f' instr #0: error:"),
            std::string::npos)
      << Text;
}

} // namespace
