//===- FsckTest.cpp - Offline store fsck + byte-flip fuzz --------------------===//
//
// Store::fsck contract tests: a freshly written store is clean; every
// class of damage (missing files, orphans, bad headers, CRC flips, torn
// tails, dangling pool ids, stale manifests) is reported with the exact
// file, byte offset, and — when the frame was readable — record key.
//
// The byte-flip fuzz loop is the acceptance gate: for EVERY byte of the
// segment and pool files, flipping it must produce at least one
// violation localized to the containing record (violation offset ==
// record start, or 0 for header bytes). The test re-frames the pristine
// files itself, so localization is checked against ground truth rather
// than against the scanner under test.
//
//===----------------------------------------------------------------------===//

#include "store/Store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace retypd;
namespace fs = std::filesystem;

namespace {

constexpr unsigned kSchema = 7;

/// Payloads are a decimal pool id (same convention as StoreTest): valid
/// iff the id resolves. Gives fsck's ValidatePayload hook teeth without
/// dragging in the scheme codec.
bool decimalValidator(std::string_view P, uint64_t PoolSize) {
  if (P.empty())
    return false;
  uint64_t Id = 0;
  for (char C : P) {
    if (C < '0' || C > '9')
      return false;
    Id = Id * 10 + static_cast<uint64_t>(C - '0');
  }
  return Id < PoolSize;
}

struct FsckTest : ::testing::Test {
  fs::path Dir;

  void SetUp() override {
    Dir = fs::temp_directory_path() /
          ("retypd_fsck_test_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  static Hash128 key(uint64_t N) { return Hash128{N * 1000003ull + 17, N}; }

  /// Builds a store with \p Records records whose payloads reference four
  /// pool names, kind byte = first payload byte per the store convention.
  void populate(unsigned Records = 6) {
    StoreOptions O;
    O.SchemaVersion = kSchema;
    O.Fsync = false;
    std::string Err;
    auto S = Store::open(Dir.string(), O, &Err);
    ASSERT_TRUE(S) << Err;
    ASSERT_TRUE(S->flushWith(
        [&](Store::Txn &T) {
          for (unsigned I = 0; I < 4; ++I)
            T.poolIdFor("name" + std::to_string(I));
          for (unsigned I = 0; I < Records; ++I) {
            std::string P = std::to_string(I % 4);
            T.append(key(I), P, static_cast<uint8_t>(P[0]));
          }
          return true;
        },
        &Err))
        << Err;
  }

  StoreFsckReport fsck() {
    return Store::fsck(Dir.string(), kSchema, decimalValidator);
  }

  static std::string slurp(const fs::path &P) {
    std::ifstream In(P, std::ios::binary);
    std::stringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  }

  static void spit(const fs::path &P, const std::string &Bytes) {
    std::ofstream Out(P, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  fs::path segmentFile() {
    for (const auto &E : fs::directory_iterator(Dir))
      if (E.path().extension() == ".rseg")
        return E.path();
    ADD_FAILURE() << "no segment file";
    return {};
  }

  fs::path poolFile() {
    for (const auto &E : fs::directory_iterator(Dir))
      if (E.path().extension() == ".rpool")
        return E.path();
    ADD_FAILURE() << "no pool file";
    return {};
  }

  /// Ground-truth record starts, re-framed from the pristine bytes:
  /// header ends at the first '\n'; each record is kind(1) + key(16) +
  /// crc(4) + LEB128 length + body.
  static std::vector<size_t> frameSegment(const std::string &B) {
    std::vector<size_t> Starts;
    size_t Pos = B.find('\n');
    EXPECT_NE(Pos, std::string::npos);
    ++Pos;
    while (Pos < B.size()) {
      Starts.push_back(Pos);
      size_t P = Pos + 1 + 16 + 4;
      uint64_t Len = 0;
      unsigned Shift = 0;
      while (true) {
        uint8_t Byte = static_cast<uint8_t>(B[P++]);
        Len |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
        if (!(Byte & 0x80))
          break;
        Shift += 7;
      }
      Pos = P + Len;
    }
    EXPECT_EQ(Pos, B.size());
    return Starts;
  }

  /// Pool records: header line, then crc(4) + len(4 LE) + bytes.
  static std::vector<size_t> framePool(const std::string &B) {
    std::vector<size_t> Starts;
    size_t Pos = B.find('\n');
    EXPECT_NE(Pos, std::string::npos);
    ++Pos;
    while (Pos < B.size()) {
      Starts.push_back(Pos);
      uint32_t Len = 0;
      for (int I = 0; I < 4; ++I)
        Len |= static_cast<uint32_t>(
                   static_cast<uint8_t>(B[Pos + 4 + I]))
               << (8 * I);
      Pos += 8 + Len;
    }
    EXPECT_EQ(Pos, B.size());
    return Starts;
  }

  /// The record start containing byte \p Off, or 0 for header bytes.
  static size_t containingStart(const std::vector<size_t> &Starts,
                                size_t Off) {
    size_t Best = 0;
    for (size_t S : Starts)
      if (S <= Off)
        Best = S;
    return Best;
  }
};

TEST_F(FsckTest, FreshStoreIsClean) {
  populate();
  StoreFsckReport R = fsck();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.SegmentsScanned, 1u);
  EXPECT_EQ(R.RecordsScanned, 6u);
  EXPECT_EQ(R.LiveRecords, 6u);
  EXPECT_EQ(R.PoolNames, 4u);
}

TEST_F(FsckTest, EmptyDirectoryIsNotAStore) {
  fs::create_directories(Dir);
  StoreFsckReport R = fsck();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("MANIFEST"), std::string::npos) << R.Error;
}

TEST_F(FsckTest, MissingSegmentNamedByManifest) {
  populate();
  fs::path Seg = segmentFile();
  fs::remove(Seg);
  StoreFsckReport R = fsck();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.clean());
  bool Found = false;
  for (const StoreFsckViolation &V : R.Violations)
    if (V.File == Seg.filename().string() &&
        V.Message.find("missing") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(FsckTest, OrphanSegmentReported) {
  populate();
  spit(Dir / "seg-ffffff-ffffff.rseg", "leftover");
  StoreFsckReport R = fsck();
  ASSERT_TRUE(R.Ok) << R.Error;
  bool Found = false;
  for (const StoreFsckViolation &V : R.Violations)
    if (V.File == "seg-ffffff-ffffff.rseg" &&
        V.Message.find("not referenced by MANIFEST") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(FsckTest, TornSegmentTailLocalized) {
  populate();
  fs::path Seg = segmentFile();
  std::string B = slurp(Seg);
  std::vector<size_t> Starts = frameSegment(B);
  size_t Last = Starts.back();
  spit(Seg, B.substr(0, Last + 3)); // truncate mid-record
  StoreFsckReport R = fsck();
  ASSERT_TRUE(R.Ok) << R.Error;
  bool Found = false;
  for (const StoreFsckViolation &V : R.Violations)
    if (V.File == Seg.filename().string() && V.Offset == Last &&
        V.Message.find("torn") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "torn tail not localized to " << Last;
}

TEST_F(FsckTest, DanglingPoolIdCaughtByPayloadValidation) {
  // Payload "9" references pool id 9; only 4 names exist.
  {
    StoreOptions O;
    O.SchemaVersion = kSchema;
    O.Fsync = false;
    std::string Err;
    auto S = Store::open(Dir.string(), O, &Err);
    ASSERT_TRUE(S) << Err;
    ASSERT_TRUE(S->flushWith(
        [&](Store::Txn &T) {
          T.poolIdFor("only");
          T.append(key(1), "9", '9');
          return true;
        },
        &Err))
        << Err;
  }
  StoreFsckReport R = fsck();
  ASSERT_TRUE(R.Ok) << R.Error;
  bool Found = false;
  for (const StoreFsckViolation &V : R.Violations)
    if (V.HasKey && V.Key == key(1) &&
        V.Message.find("structural validation") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(FsckTest, KindByteDisagreementReported) {
  populate(1);
  // Rewrite the single record's kind byte (first byte after the header)
  // and refresh the frame CRC so only the kind convention is violated...
  // which is impossible: the CRC covers the kind byte. Flip it WITHOUT
  // fixing the CRC and the finding is a CRC mismatch — still localized.
  fs::path Seg = segmentFile();
  std::string B = slurp(Seg);
  std::vector<size_t> Starts = frameSegment(B);
  B[Starts[0]] ^= 0x1;
  spit(Seg, B);
  StoreFsckReport R = fsck();
  ASSERT_TRUE(R.Ok) << R.Error;
  bool Found = false;
  for (const StoreFsckViolation &V : R.Violations)
    if (V.Offset == Starts[0] && V.Message.find("CRC") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(FsckTest, SegmentByteFlipFuzzDetectsAndLocalizesEverything) {
  populate();
  fs::path Seg = segmentFile();
  const std::string Pristine = slurp(Seg);
  const std::vector<size_t> Starts = frameSegment(Pristine);
  ASSERT_TRUE(fsck().clean());
  for (size_t Off = 0; Off < Pristine.size(); ++Off) {
    std::string Mutated = Pristine;
    Mutated[Off] = static_cast<char>(Mutated[Off] ^ 0xff);
    spit(Seg, Mutated);
    StoreFsckReport R = fsck();
    ASSERT_TRUE(R.Ok) << "offset " << Off << ": " << R.Error;
    ASSERT_FALSE(R.clean()) << "flip at offset " << Off << " undetected";
    size_t Expect = containingStart(Starts, Off);
    bool Localized = false;
    for (const StoreFsckViolation &V : R.Violations)
      if (V.File == Seg.filename().string() && V.Offset == Expect)
        Localized = true;
    EXPECT_TRUE(Localized)
        << "flip at offset " << Off << " not localized to record at "
        << Expect;
  }
  spit(Seg, Pristine);
  EXPECT_TRUE(fsck().clean());
}

TEST_F(FsckTest, PoolByteFlipFuzzDetectsAndLocalizesEverything) {
  populate();
  fs::path Pool = poolFile();
  const std::string Pristine = slurp(Pool);
  const std::vector<size_t> Starts = framePool(Pristine);
  ASSERT_TRUE(fsck().clean());
  for (size_t Off = 0; Off < Pristine.size(); ++Off) {
    std::string Mutated = Pristine;
    Mutated[Off] = static_cast<char>(Mutated[Off] ^ 0xff);
    spit(Pool, Mutated);
    StoreFsckReport R = fsck();
    ASSERT_TRUE(R.Ok) << "offset " << Off << ": " << R.Error;
    ASSERT_FALSE(R.clean()) << "pool flip at offset " << Off << " undetected";
    size_t Expect = containingStart(Starts, Off);
    bool Localized = false;
    for (const StoreFsckViolation &V : R.Violations)
      if (V.File == Pool.filename().string() && V.Offset == Expect)
        Localized = true;
    EXPECT_TRUE(Localized)
        << "pool flip at offset " << Off << " not localized to record at "
        << Expect;
  }
  spit(Pool, Pristine);
  EXPECT_TRUE(fsck().clean());
}

TEST_F(FsckTest, ManifestFlipsAreDetected) {
  populate();
  const std::string Pristine = slurp(Dir / "MANIFEST");
  for (size_t Off = 0; Off < Pristine.size(); ++Off) {
    std::string Mutated = Pristine;
    Mutated[Off] = static_cast<char>(Mutated[Off] ^ 0xff);
    spit(Dir / "MANIFEST", Mutated);
    StoreFsckReport R = fsck();
    EXPECT_FALSE(R.clean()) << "MANIFEST flip at offset " << Off
                            << " undetected";
  }
  spit(Dir / "MANIFEST", Pristine);
  EXPECT_TRUE(fsck().clean());
}

} // namespace
