//===- StoreTest.cpp - Durable artifact store unit + crash tests --------------===//
//
// Unit coverage for store/Store.h: record round trips across reopen,
// last-writer-wins resolution, segment rolling, cross-object visibility
// (two Store objects on one directory stand in for two processes), and
// the crash-consistency contract — torn tails dropped and healed, CRC
// byte flips contained to one record, a killed compaction invisible
// until its MANIFEST rename, and compaction reclaiming at least the dead
// bytes inspect reports.
//
//===----------------------------------------------------------------------===//

#include "store/Store.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace retypd;
namespace fs = std::filesystem;

namespace {

constexpr unsigned kTestSchema = 7;

struct StoreTest : ::testing::Test {
  fs::path Dir;

  void SetUp() override {
    Dir = fs::temp_directory_path() /
          ("retypd_store_test_" +
           std::to_string(::testing::UnitTest::GetInstance()
                              ->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
    fs::remove_all(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  StoreOptions opts(size_t MaxSegmentBytes = 8u << 20) {
    StoreOptions O;
    O.SchemaVersion = kTestSchema;
    O.MaxSegmentBytes = MaxSegmentBytes;
    O.Fsync = false; // keep the suite fast; the protocol is what's tested
    return O;
  }

  /// Options with a validator mimicking the summary cache's: the payload
  /// is a decimal pool id, structurally valid only when the pool
  /// resolves it. Lets the pool crash tests assert "never dangling ids".
  StoreOptions poolOpts() {
    StoreOptions O = opts();
    O.Validator = [](std::string_view P, uint64_t PoolSize) {
      if (P.empty())
        return false;
      uint64_t Id = 0;
      for (char C : P) {
        if (C < '0' || C > '9')
          return false;
        Id = Id * 10 + static_cast<uint64_t>(C - '0');
      }
      return Id < PoolSize;
    };
    return O;
  }

  std::unique_ptr<Store> openStore(size_t MaxSegmentBytes = 8u << 20) {
    std::string Err;
    auto S = Store::open(Dir.string(), opts(MaxSegmentBytes), &Err);
    EXPECT_TRUE(S) << Err;
    return S;
  }

  static Hash128 key(uint64_t N) { return Hash128{N * 1000003ull + 17, N}; }

  static std::string payload(uint64_t N, size_t Len = 10) {
    std::string P(Len, '\0');
    for (size_t I = 0; I < Len; ++I)
      P[I] = static_cast<char>('a' + (N + I) % 26);
    return P;
  }

  /// The store's segment files in MANIFEST-independent name order.
  std::vector<fs::path> segmentFiles() {
    std::vector<fs::path> Out;
    for (const auto &E : fs::directory_iterator(Dir))
      if (E.path().extension() == ".rseg")
        Out.push_back(E.path());
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  size_t segmentBytesTotal() {
    size_t N = 0;
    for (const fs::path &P : segmentFiles())
      N += static_cast<size_t>(fs::file_size(P));
    return N;
  }
};

TEST_F(StoreTest, RoundTripAndReopen) {
  {
    auto S = openStore();
    ASSERT_TRUE(S);
    EXPECT_EQ(S->generation(), 1u);
    EXPECT_EQ(S->keyCount(), 0u);
    for (uint64_t I = 0; I < 20; ++I)
      S->append(key(I), payload(I, 5 + I * 3));
    EXPECT_EQ(S->pendingRecords(), 20u);
    EXPECT_EQ(S->keyCount(), 0u) << "pending records are not yet visible";
    std::string Err;
    ASSERT_TRUE(S->flush(&Err)) << Err;
    EXPECT_EQ(S->pendingRecords(), 0u);
    EXPECT_EQ(S->keyCount(), 20u);
    for (uint64_t I = 0; I < 20; ++I) {
      Store::PayloadRef R = S->lookup(key(I));
      ASSERT_TRUE(R) << I;
      EXPECT_EQ(R.view(), payload(I, 5 + I * 3)) << I;
    }
    EXPECT_FALSE(S->lookup(key(999)));
    EXPECT_TRUE(S->payloadEquals(key(3), payload(3, 14)));
    EXPECT_FALSE(S->payloadEquals(key(3), "other bytes"));
  }
  // Fresh object (a new process): everything persisted.
  auto S = openStore();
  ASSERT_TRUE(S);
  EXPECT_EQ(S->keyCount(), 20u);
  for (uint64_t I = 0; I < 20; ++I) {
    Store::PayloadRef R = S->lookup(key(I));
    ASSERT_TRUE(R) << I;
    EXPECT_EQ(R.view(), payload(I, 5 + I * 3)) << I;
  }
}

TEST_F(StoreTest, LastWriterWinsWithinAndAcrossFlushes) {
  auto S = openStore();
  S->append(key(1), "first");
  S->append(key(1), "second"); // same flush: later record wins
  ASSERT_TRUE(S->flush());
  EXPECT_EQ(S->lookup(key(1)).view(), "second");
  S->append(key(1), "third"); // later flush wins again
  ASSERT_TRUE(S->flush());
  EXPECT_EQ(S->lookup(key(1)).view(), "third");
  EXPECT_EQ(S->keyCount(), 1u);
  // Reopen resolves the journal the same way.
  auto S2 = openStore();
  EXPECT_EQ(S2->lookup(key(1)).view(), "third");
  // The superseded records are dead bytes inspect can see.
  StoreInfo Info = Store::inspect(Dir.string(), kTestSchema);
  ASSERT_TRUE(Info.Ok) << Info.Error;
  EXPECT_EQ(Info.KeyCount, 1u);
  EXPECT_GT(Info.DeadBytes, 0u);
}

TEST_F(StoreTest, SegmentRollKeepsEverythingVisible) {
  // A tiny roll threshold forces several segments.
  auto S = openStore(/*MaxSegmentBytes=*/256);
  for (uint64_t I = 0; I < 30; ++I) {
    S->append(key(I), payload(I, 40));
    ASSERT_TRUE(S->flush());
  }
  EXPECT_GT(segmentFiles().size(), 2u) << "roll threshold never tripped";
  for (uint64_t I = 0; I < 30; ++I)
    EXPECT_TRUE(S->lookup(key(I))) << I;
  // A reopen walks all manifest segments.
  auto S2 = openStore(256);
  EXPECT_EQ(S2->keyCount(), 30u);
  StoreInfo Info = Store::inspect(Dir.string(), kTestSchema);
  ASSERT_TRUE(Info.Ok);
  EXPECT_GT(Info.Segments.size(), 2u);
}

TEST_F(StoreTest, CrossObjectVisibilityViaRefresh) {
  auto A = openStore();
  auto B = openStore();
  A->append(key(42), "from A");
  ASSERT_TRUE(A->flush());
  // B's view predates the append; refresh picks it up without a lock.
  EXPECT_FALSE(B->lookup(key(42)));
  std::string Err;
  ASSERT_TRUE(B->refresh(&Err)) << Err;
  ASSERT_TRUE(B->lookup(key(42)));
  EXPECT_EQ(B->lookup(key(42)).view(), "from A");
  // And across a compaction by A (generation change).
  ASSERT_TRUE(A->compact().has_value());
  ASSERT_TRUE(B->refresh(&Err)) << Err;
  EXPECT_EQ(B->generation(), A->generation());
  EXPECT_EQ(B->lookup(key(42)).view(), "from A");
}

TEST_F(StoreTest, TornTailDroppedOnOpenAndHealedByNextAppend) {
  {
    auto S = openStore();
    for (uint64_t I = 0; I < 5; ++I)
      S->append(key(I), payload(I, 50));
    ASSERT_TRUE(S->flush());
  }
  // Crash mid-append: the last record loses its final 20 bytes.
  fs::path Seg = segmentFiles().at(0);
  size_t Full = static_cast<size_t>(fs::file_size(Seg));
  fs::resize_file(Seg, Full - 20);
  {
    auto S = openStore();
    EXPECT_EQ(S->keyCount(), 4u) << "torn tail record must be dropped";
    EXPECT_FALSE(S->lookup(key(4)));
    for (uint64_t I = 0; I < 4; ++I)
      EXPECT_TRUE(S->lookup(key(I))) << I;
    // Inspect agrees and counts the debris as dead bytes.
    StoreInfo Info = Store::inspect(Dir.string(), kTestSchema);
    ASSERT_TRUE(Info.Ok);
    EXPECT_EQ(Info.KeyCount, 4u);
    EXPECT_GT(Info.DeadBytes, 0u);
    // The next locked append truncates the debris and writes clean.
    S->append(key(100), "healed");
    ASSERT_TRUE(S->flush());
  }
  auto S = openStore();
  EXPECT_EQ(S->keyCount(), 5u);
  EXPECT_EQ(S->lookup(key(100)).view(), "healed");
  StoreInfo Info = Store::inspect(Dir.string(), kTestSchema);
  ASSERT_TRUE(Info.Ok);
  for (const StoreSegmentInfo &Seg2 : Info.Segments)
    EXPECT_EQ(Seg2.CorruptRecords, 0u);
}

TEST_F(StoreTest, CrcFlipSkipsRecordWithoutPoisoningNeighbors) {
  // Fixed-size payloads make the middle record's body offset computable:
  // header, then records of 1 + 16 + 4 + 1 + 10 = 32 bytes each.
  {
    auto S = openStore();
    for (uint64_t I = 0; I < 3; ++I)
      S->append(key(I), payload(I, 10));
    ASSERT_TRUE(S->flush());
  }
  fs::path Seg = segmentFiles().at(0);
  size_t HeaderBytes = 0;
  {
    std::ifstream In(Seg, std::ios::binary);
    std::string Line;
    std::getline(In, Line);
    HeaderBytes = Line.size() + 1;
  }
  {
    std::fstream F(Seg, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(static_cast<std::streamoff>(HeaderBytes + 32 + 22 + 4));
    F.put('#'); // flip a byte inside record 1's body
  }
  auto S = openStore();
  EXPECT_EQ(S->keyCount(), 2u);
  EXPECT_TRUE(S->lookup(key(0))) << "record before the flip lost";
  EXPECT_FALSE(S->lookup(key(1))) << "corrupt record served";
  EXPECT_TRUE(S->lookup(key(2))) << "record after the flip lost";
  StoreInfo Info = Store::inspect(Dir.string(), kTestSchema);
  ASSERT_TRUE(Info.Ok);
  EXPECT_EQ(Info.Segments.at(0).CorruptRecords, 1u);
  // Compaction folds the corrupt record away.
  auto R = S->compact();
  ASSERT_TRUE(R);
  EXPECT_EQ(R->LiveRecords, 2u);
  Info = Store::inspect(Dir.string(), kTestSchema);
  ASSERT_TRUE(Info.Ok);
  EXPECT_EQ(Info.Segments.at(0).CorruptRecords, 0u);
  EXPECT_EQ(Info.DeadBytes, 0u);
}

TEST_F(StoreTest, KilledMidCompactionOpensPreviousGeneration) {
  {
    auto S = openStore();
    for (uint64_t I = 0; I < 4; ++I)
      S->append(key(I), payload(I));
    ASSERT_TRUE(S->flush());
  }
  // Simulate a compaction killed after writing its new-generation
  // segment and staging MANIFEST, but before the rename published it.
  std::ofstream(Dir / "seg-000002-000000.rseg", std::ios::binary)
      << "retypd-segment v1 schema " << kTestSchema << "\n";
  std::ofstream(Dir / "MANIFEST.tmp.999.0", std::ios::binary)
      << "half a manifest";
  {
    auto S = openStore();
    EXPECT_EQ(S->generation(), 1u) << "unpublished compaction leaked in";
    EXPECT_EQ(S->keyCount(), 4u);
    // The next real compaction IS the killed one's retry: it overwrites
    // the orphan segment under the same gen-2 name and cleans up.
    auto R = S->compact();
    ASSERT_TRUE(R);
    EXPECT_EQ(S->keyCount(), 4u);
  }
  EXPECT_FALSE(fs::exists(Dir / "MANIFEST.tmp.999.0"));
  auto S = openStore();
  EXPECT_EQ(S->keyCount(), 4u);
}

TEST_F(StoreTest, TornPoolTailAndDanglingPoolIdsAreContainedOnReopen) {
  std::string Err;
  {
    auto S = Store::open(Dir.string(), poolOpts(), &Err);
    ASSERT_TRUE(S) << Err;
    ASSERT_TRUE(S->flushWith(
        [&](Store::Txn &T) {
          EXPECT_EQ(T.poolIdFor("alpha"), 0u);
          EXPECT_EQ(T.poolIdFor("beta"), 1u);
          EXPECT_EQ(T.poolIdFor("alpha"), 0u) << "pool ids are per-name stable";
          T.append(key(0), "0");
          T.append(key(1), "1");
          return true;
        },
        &Err))
        << Err;
    EXPECT_EQ(S->poolSize(), 2u);
    // A record referencing a pool id that was never published — the
    // state a writer killed between segment write and pool durability
    // would leave if the pool-first ordering were violated. Plant it
    // directly (own-process appends skip the validator): the scan-time
    // validator must contain it on the next open.
    S->append(key(2), "7");
    ASSERT_TRUE(S->flush(&Err)) << Err;
  }
  // Tear the pool's tail: half a record from a killed mid-append writer.
  fs::path Pool;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".rpool")
      Pool = E.path();
  ASSERT_FALSE(Pool.empty());
  std::ofstream(Pool, std::ios::binary | std::ios::app) << "\x01\x02\x03";

  auto S = Store::open(Dir.string(), poolOpts(), &Err);
  ASSERT_TRUE(S) << Err;
  EXPECT_EQ(S->poolSize(), 2u) << "torn pool tail must be dropped";
  EXPECT_TRUE(S->lookup(key(0)));
  EXPECT_TRUE(S->lookup(key(1)));
  EXPECT_FALSE(S->lookup(key(2)))
      << "a record with a dangling pool id must never be indexed";

  // The next pool append heals the torn tail in place; the healed pool
  // extends the old one (ids stable), and the new record resolves.
  ASSERT_TRUE(S->flushWith(
      [&](Store::Txn &T) {
        EXPECT_EQ(T.poolIdFor("gamma"), 2u);
        T.append(key(3), "2");
        return true;
      },
      &Err))
      << Err;
  auto S2 = Store::open(Dir.string(), poolOpts(), &Err);
  ASSERT_TRUE(S2) << Err;
  EXPECT_EQ(S2->poolSize(), 3u);
  std::vector<std::string> Names;
  S2->forEachPoolNameFrom(
      0, [&](uint64_t, std::string_view N) { Names.emplace_back(N); });
  EXPECT_EQ(Names, (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_TRUE(S2->lookup(key(3)));
}

TEST_F(StoreTest, KilledBeforeFirstPoolPublicationStaysInvisible) {
  {
    auto S = openStore();
    S->append(key(0), payload(0));
    ASSERT_TRUE(S->flush());
  }
  // The first pool is published by the MANIFEST gaining a pool line.
  // Simulate a writer killed after writing the pool file but before the
  // rename: an orphan pool plus a staged manifest.
  std::ofstream(Dir / "pool-000001.rpool", std::ios::binary)
      << "retypd-pool v1 schema " << kTestSchema << "\n";
  std::ofstream(Dir / "MANIFEST.tmp.123.9", std::ios::binary)
      << "half a manifest";
  {
    auto S = openStore();
    ASSERT_TRUE(S);
    EXPECT_EQ(S->poolSize(), 0u) << "unpublished pool leaked in";
    EXPECT_TRUE(S->lookup(key(0)));
    ASSERT_TRUE(S->compact());
  }
  EXPECT_FALSE(fs::exists(Dir / "pool-000001.rpool"))
      << "orphan pool survived compaction";
  EXPECT_FALSE(fs::exists(Dir / "MANIFEST.tmp.123.9"));
}

TEST_F(StoreTest, KilledMidCompactionKeepsPoolVerbatimAndEpochStable) {
  std::string Err;
  auto A = Store::open(Dir.string(), poolOpts(), &Err);
  ASSERT_TRUE(A) << Err;
  ASSERT_TRUE(A->flushWith(
      [&](Store::Txn &T) {
        T.poolIdFor("alpha");
        T.poolIdFor("beta");
        T.append(key(0), "0");
        T.append(key(1), "1");
        return true;
      },
      &Err))
      << Err;
  A.reset();

  // A compaction killed after writing its gen-2 segment AND gen-2 pool,
  // but before the MANIFEST rename published either.
  std::ofstream(Dir / "seg-000002-000000.rseg", std::ios::binary)
      << "retypd-segment v1 schema " << kTestSchema << "\n";
  std::ofstream(Dir / "pool-000002.rpool", std::ios::binary)
      << "retypd-pool v1 schema " << kTestSchema << "\n";
  std::ofstream(Dir / "MANIFEST.tmp.999.1", std::ios::binary)
      << "half a manifest";

  A = Store::open(Dir.string(), poolOpts(), &Err);
  ASSERT_TRUE(A) << Err;
  EXPECT_EQ(A->generation(), 1u) << "unpublished compaction leaked in";
  EXPECT_EQ(A->poolSize(), 2u) << "previous pool must stay authoritative";
  EXPECT_TRUE(A->lookup(key(0)));

  // A second object (another process) holds its translation table across
  // the retry compaction: the pool is carried verbatim, so its epoch —
  // and with it every table built against it — must survive.
  auto B = Store::open(Dir.string(), poolOpts(), &Err);
  ASSERT_TRUE(B) << Err;
  uint64_t Epoch0 = B->poolEpoch();

  auto R = A->compact(&Err);
  ASSERT_TRUE(R) << Err;
  EXPECT_EQ(A->poolSize(), 2u);
  std::vector<std::string> Names;
  A->forEachPoolNameFrom(
      0, [&](uint64_t, std::string_view N) { Names.emplace_back(N); });
  EXPECT_EQ(Names, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(A->lookup(key(0)));
  EXPECT_TRUE(A->lookup(key(1)));

  ASSERT_TRUE(B->refresh(&Err)) << Err;
  EXPECT_EQ(B->poolEpoch(), Epoch0)
      << "verbatim pool carry must not invalidate reader translation tables";
  EXPECT_TRUE(B->lookup(key(1)));
  EXPECT_FALSE(fs::exists(Dir / "MANIFEST.tmp.999.1"));
}

TEST_F(StoreTest, CompactionReclaimsAtLeastReportedDeadBytes) {
  auto S = openStore();
  for (uint64_t I = 0; I < 10; ++I)
    S->append(key(I), payload(I, 100));
  ASSERT_TRUE(S->flush());
  for (uint64_t I = 0; I < 10; ++I)
    S->append(key(I), payload(I + 1, 80)); // supersede everything
  ASSERT_TRUE(S->flush());

  StoreInfo Before = Store::inspect(Dir.string(), kTestSchema);
  ASSERT_TRUE(Before.Ok);
  EXPECT_GT(Before.DeadBytes, 1000u);
  size_t BytesBefore = segmentBytesTotal();

  auto R = S->compact();
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Generation, 2u);
  EXPECT_EQ(R->LiveRecords, 10u);
  EXPECT_EQ(R->DroppedRecords, 10u);
  EXPECT_GE(R->ReclaimedBytes, Before.DeadBytes)
      << "compaction must reclaim at least the dead bytes reported";
  size_t BytesAfter = segmentBytesTotal();
  EXPECT_EQ(BytesBefore - BytesAfter, R->ReclaimedBytes);

  for (uint64_t I = 0; I < 10; ++I)
    EXPECT_EQ(S->lookup(key(I)).view(), payload(I + 1, 80)) << I;
  StoreInfo After = Store::inspect(Dir.string(), kTestSchema);
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(After.DeadBytes, 0u);
  EXPECT_EQ(After.Generation, 2u);
}

TEST_F(StoreTest, CompactWithFilterDropsRejectedKeys) {
  auto S = openStore();
  for (uint64_t I = 0; I < 6; ++I)
    S->append(key(I), payload(I));
  ASSERT_TRUE(S->flush());
  auto R = S->compact(
      [](const Hash128 &K, size_t) { return K.Lo % 2 == 0; });
  ASSERT_TRUE(R);
  EXPECT_EQ(R->LiveRecords, 3u);
  EXPECT_TRUE(S->lookup(key(0)));
  EXPECT_FALSE(S->lookup(key(1)));
  EXPECT_TRUE(S->lookup(key(2)));
}

TEST_F(StoreTest, StaleSchemaRefusedThenRegeneratedOnOptIn) {
  {
    auto S = openStore();
    S->append(key(1), "old schema payload");
    ASSERT_TRUE(S->flush());
  }
  // A binary with a newer payload schema arrives.
  StoreOptions Newer = opts();
  Newer.SchemaVersion = kTestSchema + 1;
  std::string Err;
  EXPECT_FALSE(Store::open(Dir.string(), Newer, &Err));
  EXPECT_NE(Err.find("re-run analyze"), std::string::npos) << Err;
  StoreInfo Info = Store::inspect(Dir.string(), kTestSchema + 1);
  EXPECT_FALSE(Info.Ok);
  EXPECT_TRUE(Info.Stale);
  EXPECT_NE(Info.Error.find("re-run analyze"), std::string::npos);
  // The analyze path opts into regeneration: stale = cold.
  Newer.RegenerateStale = true;
  auto S = Store::open(Dir.string(), Newer, &Err);
  ASSERT_TRUE(S) << Err;
  EXPECT_EQ(S->keyCount(), 0u);
  EXPECT_FALSE(S->lookup(key(1)));
  // The reverse direction — a store from the FUTURE — is never touched.
  StoreOptions Older = opts();
  Older.SchemaVersion = kTestSchema;
  Older.RegenerateStale = true;
  EXPECT_FALSE(Store::open(Dir.string(), Older, &Err));
  EXPECT_NE(Err.find("newer than this binary"), std::string::npos) << Err;
  Info = Store::inspect(Dir.string(), kTestSchema);
  EXPECT_TRUE(Info.Newer);
  EXPECT_EQ(Store::inspect(Dir.string(), kTestSchema + 1).Ok, true)
      << "regenerated store must be current for the new schema";
}

TEST_F(StoreTest, ForeignDirectoryRefused) {
  fs::create_directories(Dir);
  std::ofstream(Dir / "MANIFEST", std::ios::binary) << "hello world\n";
  std::string Err;
  EXPECT_FALSE(Store::open(Dir.string(), opts(), &Err));
  EXPECT_NE(Err.find("unrecognized MANIFEST header"), std::string::npos)
      << Err;
  StoreInfo Info = Store::inspect(Dir.string(), kTestSchema);
  EXPECT_FALSE(Info.Ok);
  EXPECT_FALSE(Info.Stale);
}

TEST_F(StoreTest, EventCountersTrackAppendsAndCompactions) {
  EventCounters::reset();
  auto S = openStore();
  for (uint64_t I = 0; I < 7; ++I)
    S->append(key(I), payload(I));
  ASSERT_TRUE(S->flush());
  EXPECT_EQ(EventCounters::StoreAppends.load(), 7u);
  ASSERT_TRUE(S->compact().has_value());
  EXPECT_EQ(EventCounters::StoreCompactions.load(), 1u);
  // mmap served: the zero-copy invariant counter stays at zero.
  for (uint64_t I = 0; I < 7; ++I)
    EXPECT_TRUE(S->lookup(key(I)));
  EXPECT_EQ(EventCounters::StorePayloadCopies.load(), 0u);
}

TEST_F(StoreTest, ConcurrentReadersWritersAndCompaction) {
  auto S = openStore();
  for (uint64_t I = 0; I < 16; ++I)
    S->append(key(I), payload(I, 64));
  ASSERT_TRUE(S->flush());

  std::atomic<bool> Stop{false};
  std::atomic<size_t> Hits{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T < 3; ++T)
    Readers.emplace_back([&] {
      uint64_t I = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        Store::PayloadRef R = S->lookup(key(I % 16));
        if (R && !R.view().empty())
          Hits.fetch_add(1, std::memory_order_relaxed);
        ++I;
      }
    });
  std::thread Writer([&] {
    for (int Round = 0; Round < 20; ++Round) {
      for (uint64_t I = 0; I < 16; ++I)
        S->append(key(I), payload(I + Round, 64));
      ASSERT_TRUE(S->flush());
      if (Round % 7 == 6) {
        ASSERT_TRUE(S->compact().has_value());
      }
    }
    Stop.store(true, std::memory_order_relaxed);
  });
  Writer.join();
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GT(Hits.load(), 0u);
  EXPECT_EQ(S->keyCount(), 16u);
}

} // namespace
