//===- StatsTest.cpp - PhaseTimes + CounterSnapshot tests -----------------===//
//
// Pins the PhaseTimes::snapshot() ordering contract (sorted ascending by
// phase name — consumers like bench_warmpath binary-search it instead of
// re-sorting) and covers the CounterSnapshot take()/delta() pair that
// replaced the ad-hoc `uint64_t X0 = EventCounters::X.load()` snapshots.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace retypd;

TEST(StatsTest, SnapshotIsSortedByPhaseName) {
  PhaseTimes::reset();
  // Register deliberately out of order; the snapshot must come back
  // sorted regardless of insertion or accumulation order.
  PhaseTimes::add("zeta.last", 1.0);
  PhaseTimes::add("alpha.first", 2.0);
  PhaseTimes::add("mid.phase", 3.0);
  PhaseTimes::add("alpha.first", 0.5); // accumulate, not duplicate

  auto Snap = PhaseTimes::snapshot();
  ASSERT_EQ(Snap.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      Snap.begin(), Snap.end(),
      [](const auto &A, const auto &B) { return A.first < B.first; }));
  EXPECT_EQ(Snap[0].first, "alpha.first");
  EXPECT_DOUBLE_EQ(Snap[0].second, 2.5);
  EXPECT_EQ(Snap[1].first, "mid.phase");
  EXPECT_EQ(Snap[2].first, "zeta.last");
  PhaseTimes::reset();
}

TEST(StatsTest, CounterSnapshotDeltaIsolatesTheMeasuredRegion) {
  EventCounters::reset();
  EventCounters::StoreHits.fetch_add(5, std::memory_order_relaxed);
  EventCounters::PoolBinds.fetch_add(2, std::memory_order_relaxed);

  const CounterSnapshot Before = CounterSnapshot::take();
  EXPECT_EQ(Before.StoreHits, 5u);

  // The "measured region".
  EventCounters::StoreHits.fetch_add(3, std::memory_order_relaxed);
  EventCounters::TraceEvents.fetch_add(7, std::memory_order_relaxed);
  EventCounters::GenCacheMisses.fetch_add(1, std::memory_order_relaxed);

  const CounterSnapshot D = Before.delta();
  EXPECT_EQ(D.StoreHits, 3u);       // pre-region hits excluded
  EXPECT_EQ(D.TraceEvents, 7u);
  EXPECT_EQ(D.GenCacheMisses, 1u);
  EXPECT_EQ(D.PoolBinds, 0u);       // untouched counters delta to zero
  EXPECT_EQ(D.ConstraintParseCalls, 0u);
  EXPECT_EQ(D.VerifierChecks, 0u);
  EventCounters::reset();
}

TEST(StatsTest, CounterSnapshotCoversEveryCounter) {
  // Bump every counter by a distinct amount and check take() sees each —
  // a new EventCounters member added without a CounterSnapshot field (or
  // take()/delta() wiring) shows up here as a miscount.
  EventCounters::reset();
  EventCounters::ConstraintParseCalls.fetch_add(1);
  EventCounters::SchemeDecodes.fetch_add(2);
  EventCounters::SchemeEncodes.fetch_add(3);
  EventCounters::GenCacheHits.fetch_add(4);
  EventCounters::GenCacheMisses.fetch_add(5);
  EventCounters::StoreHits.fetch_add(6);
  EventCounters::StoreAppends.fetch_add(7);
  EventCounters::StoreCompactions.fetch_add(8);
  EventCounters::StorePayloadCopies.fetch_add(9);
  EventCounters::SegmentValidates.fetch_add(10);
  EventCounters::PoolBinds.fetch_add(11);
  EventCounters::PoolBindHits.fetch_add(12);
  EventCounters::VerifierChecks.fetch_add(13);
  EventCounters::TraceEvents.fetch_add(14);

  const CounterSnapshot S = CounterSnapshot::take();
  EXPECT_EQ(S.ConstraintParseCalls, 1u);
  EXPECT_EQ(S.SchemeDecodes, 2u);
  EXPECT_EQ(S.SchemeEncodes, 3u);
  EXPECT_EQ(S.GenCacheHits, 4u);
  EXPECT_EQ(S.GenCacheMisses, 5u);
  EXPECT_EQ(S.StoreHits, 6u);
  EXPECT_EQ(S.StoreAppends, 7u);
  EXPECT_EQ(S.StoreCompactions, 8u);
  EXPECT_EQ(S.StorePayloadCopies, 9u);
  EXPECT_EQ(S.SegmentValidates, 10u);
  EXPECT_EQ(S.PoolBinds, 11u);
  EXPECT_EQ(S.PoolBindHits, 12u);
  EXPECT_EQ(S.VerifierChecks, 13u);
  EXPECT_EQ(S.TraceEvents, 14u);

  EventCounters::reset();
  const CounterSnapshot Z = CounterSnapshot::take();
  EXPECT_EQ(Z.StoreCompactions, 0u);
  EXPECT_EQ(Z.TraceEvents, 0u);
}
