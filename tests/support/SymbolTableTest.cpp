//===- SymbolTableTest.cpp - Interner unit tests --------------------------===//

#include "support/SymbolTable.h"

#include <gtest/gtest.h>

using namespace retypd;

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable T;
  SymbolId A = T.intern("eax");
  SymbolId B = T.intern("eax");
  EXPECT_EQ(A, B);
  EXPECT_EQ(T.size(), 1u);
}

TEST(SymbolTable, DistinctStringsDistinctIds) {
  SymbolTable T;
  SymbolId A = T.intern("eax");
  SymbolId B = T.intern("ebx");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.name(A), "eax");
  EXPECT_EQ(T.name(B), "ebx");
}

TEST(SymbolTable, LookupDoesNotIntern) {
  SymbolTable T;
  SymbolId Out = 0;
  EXPECT_FALSE(T.lookup("missing", Out));
  EXPECT_EQ(T.size(), 0u);
  SymbolId A = T.intern("present");
  EXPECT_TRUE(T.lookup("present", Out));
  EXPECT_EQ(Out, A);
}

TEST(SymbolTable, ManySymbolsStayStable) {
  SymbolTable T;
  std::vector<SymbolId> Ids;
  for (int I = 0; I < 1000; ++I)
    Ids.push_back(T.intern("sym" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(T.name(Ids[I]), "sym" + std::to_string(I));
}
