//===- SymbolTableTest.cpp - Interner unit tests --------------------------===//

#include "support/SymbolTable.h"

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

using namespace retypd;

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable T;
  SymbolId A = T.intern("eax");
  SymbolId B = T.intern("eax");
  EXPECT_EQ(A, B);
  EXPECT_EQ(T.size(), 1u);
}

TEST(SymbolTable, DistinctStringsDistinctIds) {
  SymbolTable T;
  SymbolId A = T.intern("eax");
  SymbolId B = T.intern("ebx");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.name(A), "eax");
  EXPECT_EQ(T.name(B), "ebx");
}

TEST(SymbolTable, LookupDoesNotIntern) {
  SymbolTable T;
  SymbolId Out = 0;
  EXPECT_FALSE(T.lookup("missing", Out));
  EXPECT_EQ(T.size(), 0u);
  SymbolId A = T.intern("present");
  EXPECT_TRUE(T.lookup("present", Out));
  EXPECT_EQ(Out, A);
}

TEST(SymbolTable, ManySymbolsStayStable) {
  SymbolTable T;
  std::vector<SymbolId> Ids;
  for (int I = 0; I < 1000; ++I)
    Ids.push_back(T.intern("sym" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(T.name(Ids[I]), "sym" + std::to_string(I));
}

TEST(SymbolTable, CopyPreservesIdsAndNames) {
  SymbolTable T;
  std::vector<SymbolId> Ids;
  for (int I = 0; I < 300; ++I)
    Ids.push_back(T.intern("name" + std::to_string(I)));
  SymbolTable Copy(T);
  EXPECT_EQ(Copy.size(), T.size());
  for (int I = 0; I < 300; ++I) {
    EXPECT_EQ(Copy.name(Ids[I]), T.name(Ids[I]));
    SymbolId Out = ~0u;
    EXPECT_TRUE(Copy.lookup("name" + std::to_string(I), Out));
    EXPECT_EQ(Out, Ids[I]);
  }
}

TEST(SymbolTable, ConcurrentInternAndLockFreeName) {
  // The sharded design's contract: concurrent intern() calls (same and
  // different strings), lookup() probes, and lock-free name() reads on ids
  // the reader obtained itself must all be safe. The check-tier1 TSan
  // preset vets the happens-before edges.
  SymbolTable T;
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::vector<std::pair<SymbolId, std::string>>> Mine(kThreads);
  std::vector<std::thread> Threads;
  for (int W = 0; W < kThreads; ++W)
    Threads.emplace_back([&T, &Mine, W] {
      for (int I = 0; I < kPerThread; ++I) {
        // Half shared across threads (contended dedup), half private.
        std::string Shared = "shared";
        Shared += std::to_string(I % 256);
        std::string Priv = "w";
        Priv += std::to_string(W);
        Priv += '$';
        Priv += std::to_string(I);
        SymbolId S = T.intern(Shared);
        SymbolId P = T.intern(Priv);
        Mine[W].push_back({S, Shared});
        Mine[W].push_back({P, Priv});
        // Lock-free reads of ids this thread interned.
        if (T.name(S) != Shared || T.name(P) != Priv)
          ADD_FAILURE() << "name() returned wrong string";
        SymbolId Out = ~0u;
        if (!T.lookup(Shared, Out) || Out != S)
          ADD_FAILURE() << "lookup() disagreed with intern()";
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  // Post-hoc: every recorded id still resolves to its string, dedup held
  // (same string -> same id across all threads), ids are dense.
  std::unordered_map<std::string, SymbolId> Seen;
  for (const auto &V : Mine)
    for (const auto &[Id, Name] : V) {
      EXPECT_EQ(T.name(Id), Name);
      auto [It, Inserted] = Seen.try_emplace(Name, Id);
      if (!Inserted) {
        EXPECT_EQ(It->second, Id) << Name;
      }
    }
  EXPECT_EQ(T.size(), Seen.size());
  EXPECT_EQ(T.size(), 256u + kThreads * kPerThread);
}
