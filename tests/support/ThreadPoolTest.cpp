//===- ThreadPoolTest.cpp - Pool + SCC wavefront tests ------------------------===//
//
// Covers the work-stealing pool (completion, inline mode, nested submits,
// exception propagation, reuse across barriers) and the CallGraph
// wavefront decomposition the parallel pipeline schedules with.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "mir/AsmParser.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

using namespace retypd;

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool Pool(3);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 100; ++I)
    Pool.submit([&Sum, I] { Sum.fetch_add(I); });
  Pool.waitAll();
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numWorkers(), 0u);
  int Calls = 0;
  std::thread::id Runner;
  Pool.submit([&] {
    ++Calls;
    Runner = std::this_thread::get_id();
  });
  Pool.waitAll();
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(Runner, std::this_thread::get_id());
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  for (unsigned Workers : {0u, 2u}) {
    ThreadPool Pool(Workers);
    std::atomic<int> Count{0};
    Pool.submit([&] {
      ++Count;
      for (int I = 0; I < 10; ++I)
        Pool.submit([&] {
          ++Count;
          Pool.submit([&] { ++Count; });
        });
    });
    Pool.waitAll();
    EXPECT_EQ(Count.load(), 21) << Workers << " workers";
  }
}

TEST(ThreadPoolTest, WaitAllRethrowsTaskException) {
  ThreadPool Pool(2);
  for (int I = 0; I < 4; ++I)
    Pool.submit([] {});
  Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.waitAll(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> After{0};
  Pool.submit([&] { ++After; });
  Pool.waitAll();
  EXPECT_EQ(After.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBarriers) {
  ThreadPool Pool(2);
  std::atomic<int> Total{0};
  for (int Wave = 0; Wave < 20; ++Wave) {
    for (int I = 0; I < 8; ++I)
      Pool.submit([&] { ++Total; });
    Pool.waitAll();
    EXPECT_EQ(Total.load(), (Wave + 1) * 8);
  }
}

TEST(ThreadPoolTest, TryRunOneDrainsQueuedTasks) {
  ThreadPool Pool(0);
  std::atomic<int> Count{0};
  for (int I = 0; I < 5; ++I)
    Pool.submit([&] { ++Count; });
  int Ran = 0;
  while (Pool.tryRunOne())
    ++Ran;
  EXPECT_EQ(Ran, 5);
  EXPECT_EQ(Count.load(), 5);
  EXPECT_FALSE(Pool.tryRunOne()); // queues empty now
  // Exceptions from tryRunOne-executed tasks surface at the next waitAll,
  // exactly like worker-side ones.
  Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_TRUE(Pool.tryRunOne());
  EXPECT_THROW(Pool.waitAll(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitWakesAtMostOneWorker) {
  // Submitting a single task into a fully idle pool must wake exactly one
  // worker, not broadcast to all of them. Run many one-task rounds from a
  // known-idle state and assert total worker wakeups stay proportional to
  // submissions (a thundering-herd pool would show ~Workers x Rounds).
  constexpr unsigned kWorkers = 4;
  constexpr int kRounds = 100;
  ThreadPool Pool(kWorkers);
  auto waitAllIdle = [&] {
    while (Pool.idleWorkers() < kWorkers)
      std::this_thread::yield();
  };
  waitAllIdle();
  uint64_t Wakeups0 = Pool.workerWakeups();
  for (int I = 0; I < kRounds; ++I) {
    std::atomic<int> Ran{0};
    Pool.submit([&] { ++Ran; });
    Pool.waitAll();
    EXPECT_EQ(Ran.load(), 1);
    waitAllIdle();
  }
  uint64_t Woken = Pool.workerWakeups() - Wakeups0;
  // One targeted wakeup per round, plus slack for OS-level spurious
  // wakeups. The herd behavior this guards against would be ~400.
  EXPECT_LE(Woken, static_cast<uint64_t>(kRounds) + 20);
}

namespace {

Module parseModule(const std::string &Text) {
  AsmParser P;
  auto M = P.parse(Text);
  EXPECT_TRUE(M.has_value()) << P.error();
  return M ? *M : Module();
}

} // namespace

TEST(ThreadPoolTest, WavefrontRespectsCallDependencies) {
  // root -> {left, right} -> leaf, plus a mutually recursive pair
  // {ping, pong} called from left.
  Module M = parseModule(R"(
fn leaf:
  ret
fn left:
  call leaf
  call ping
  ret
fn right:
  call leaf
  ret
fn root:
  call left
  call right
  ret
fn ping:
  call pong
  ret
fn pong:
  call ping
  ret
)");
  CallGraph CG(M);

  const auto &Waves = CG.bottomUpWaves();
  ASSERT_GE(Waves.size(), 3u);

  // Every SCC appears exactly once across the waves.
  std::set<uint32_t> Seen;
  size_t Count = 0;
  for (const auto &W : Waves)
    for (uint32_t S : W) {
      Seen.insert(S);
      ++Count;
    }
  EXPECT_EQ(Count, CG.sccs().size());
  EXPECT_EQ(Seen.size(), CG.sccs().size());

  // Callee SCCs are always in a strictly earlier wave.
  std::vector<size_t> WaveOf(CG.sccs().size());
  for (size_t WI = 0; WI < Waves.size(); ++WI)
    for (uint32_t S : Waves[WI])
      WaveOf[S] = WI;
  for (uint32_t S = 0; S < CG.sccs().size(); ++S)
    for (uint32_t T : CG.sccCallees(S))
      EXPECT_LT(WaveOf[T], WaveOf[S]) << "SCC " << S << " -> " << T;

  // The mutually recursive pair condenses into one SCC of two members.
  uint32_t PingScc = CG.sccOf(*M.findFunction("ping"));
  EXPECT_EQ(PingScc, CG.sccOf(*M.findFunction("pong")));
  EXPECT_EQ(CG.sccs()[PingScc].size(), 2u);

  // left and right are independent (same wave, distinct SCCs) — the
  // parallelism the pipeline exploits.
  uint32_t L = CG.sccOf(*M.findFunction("left"));
  uint32_t R = CG.sccOf(*M.findFunction("right"));
  EXPECT_NE(L, R);
  EXPECT_LT(WaveOf[CG.sccOf(*M.findFunction("leaf"))], WaveOf[L]);

  // Top-down waves are exactly the reverse decomposition.
  auto Down = CG.topDownWaves();
  ASSERT_EQ(Down.size(), Waves.size());
  for (size_t I = 0; I < Down.size(); ++I)
    EXPECT_EQ(Down[I], Waves[Waves.size() - 1 - I]);
}

TEST(ThreadPoolTest, WavefrontOrderIsDeterministic) {
  Module M = parseModule(R"(
fn a:
  call c
  ret
fn b:
  call c
  ret
fn c:
  ret
fn main:
  call a
  call b
  ret
)");
  CallGraph G1(M), G2(M);
  EXPECT_EQ(G1.bottomUpWaves(), G2.bottomUpWaves());
}
