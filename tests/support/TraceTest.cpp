//===- TraceTest.cpp - Span recorder + Chrome JSON export tests -----------===//
//
// Covers the per-thread span/instant recorder of support/Trace.h: the
// zero-cost-off contract (no buffers, no counted events, untouched Args),
// span nesting and multi-thread interleaving round-tripping into valid
// Chrome trace-event JSON, the collect() ordering contract, and the
// per-SCC profile aggregation. The multi-thread cases double as the tsan
// targets (support_TraceTest is in RETYPD_TSAN_TESTS).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <thread>
#include <vector>

using namespace retypd;

namespace {

/// Minimal JSON well-formedness checker — enough to catch the classic
/// emitter bugs (trailing commas, unescaped quotes, unbalanced brackets)
/// without pulling in a parser dependency.
bool validJson(const std::string &S, size_t &I);

bool skipWs(const std::string &S, size_t &I) {
  while (I < S.size() && (S[I] == ' ' || S[I] == '\n' || S[I] == '\t' ||
                          S[I] == '\r'))
    ++I;
  return I < S.size();
}

bool validString(const std::string &S, size_t &I) {
  if (I >= S.size() || S[I] != '"')
    return false;
  ++I;
  while (I < S.size() && S[I] != '"') {
    if (S[I] == '\\') {
      ++I;
      if (I >= S.size())
        return false;
    }
    ++I;
  }
  if (I >= S.size())
    return false;
  ++I; // closing quote
  return true;
}

bool validNumber(const std::string &S, size_t &I) {
  size_t Start = I;
  if (I < S.size() && (S[I] == '-' || S[I] == '+'))
    ++I;
  while (I < S.size() && (std::isdigit(static_cast<unsigned char>(S[I])) ||
                          S[I] == '.' || S[I] == 'e' || S[I] == 'E' ||
                          S[I] == '-' || S[I] == '+'))
    ++I;
  return I > Start;
}

bool validJson(const std::string &S, size_t &I) {
  if (!skipWs(S, I))
    return false;
  char C = S[I];
  if (C == '{') {
    ++I;
    if (!skipWs(S, I))
      return false;
    if (S[I] == '}') {
      ++I;
      return true;
    }
    while (true) {
      if (!skipWs(S, I) || !validString(S, I) || !skipWs(S, I) ||
          S[I] != ':')
        return false;
      ++I;
      if (!validJson(S, I) || !skipWs(S, I))
        return false;
      if (S[I] == ',') {
        ++I;
        continue;
      }
      if (S[I] == '}') {
        ++I;
        return true;
      }
      return false;
    }
  }
  if (C == '[') {
    ++I;
    if (!skipWs(S, I))
      return false;
    if (S[I] == ']') {
      ++I;
      return true;
    }
    while (true) {
      if (!validJson(S, I) || !skipWs(S, I))
        return false;
      if (S[I] == ',') {
        ++I;
        continue;
      }
      if (S[I] == ']') {
        ++I;
        return true;
      }
      return false;
    }
  }
  if (C == '"')
    return validString(S, I);
  if (S.compare(I, 4, "true") == 0) {
    I += 4;
    return true;
  }
  if (S.compare(I, 5, "false") == 0) {
    I += 5;
    return true;
  }
  if (S.compare(I, 4, "null") == 0) {
    I += 4;
    return true;
  }
  return validNumber(S, I);
}

bool isValidJson(const std::string &S) {
  size_t I = 0;
  if (!validJson(S, I))
    return false;
  skipWs(S, I);
  return I == S.size();
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

/// Recording guard: every test that starts a recording must stop it, or a
/// failing ASSERT would leak an enabled recorder into later tests.
struct Recording {
  Recording() { trace::start(); }
  ~Recording() { trace::stop(); }
};

} // namespace

TEST(TraceTest, OffByDefaultRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  EventCounters::reset();
  {
    trace::TraceSpan Span("noop", "test");
    EXPECT_FALSE(Span.active());
    // Disabled spans leave Args untouched: strings stay empty (SSO, no
    // heap), so argument setup must be guarded by active() at call sites.
    EXPECT_TRUE(Span.Args.Fn.empty());
    trace::instant("noop.instant", "test", 7);
  }
  EXPECT_EQ(trace::collect().size(), 0u);
  EXPECT_EQ(trace::bufferCount(), 0u);
  EXPECT_EQ(EventCounters::TraceEvents.load(std::memory_order_relaxed), 0u);
}

TEST(TraceTest, NestedSpansRoundTripToValidJson) {
  EventCounters::reset();
  {
    Recording R;
    {
      trace::TraceSpan Outer("outer", "test");
      ASSERT_TRUE(Outer.active());
      Outer.Args.Scc = 3;
      Outer.Args.Fn = "fn_with_\"quotes\"_and_\\slashes\\";
      Outer.Args.Backend = "retypd";
      Outer.Args.Constraints = 42;
      {
        trace::TraceSpan Inner("inner", "test");
        Inner.Args.JoinOps = 9;
        Inner.Args.Cache = "hit";
      }
      trace::instant("tick", "test", 5, 3);
    }
  }
  std::vector<trace::Event> Events = trace::collect();
  ASSERT_EQ(Events.size(), 3u);
  // collect() sorts by start time: outer opened first, then inner, then
  // the instant — even though the inner span's destructor ran first.
  EXPECT_STREQ(Events[0].Name, "outer");
  EXPECT_STREQ(Events[1].Name, "inner");
  EXPECT_STREQ(Events[2].Name, "tick");
  EXPECT_EQ(Events[0].Ph, 'X');
  EXPECT_EQ(Events[2].Ph, 'i');
  EXPECT_GE(Events[0].DurUs, Events[1].DurUs); // outer encloses inner
  EXPECT_EQ(Events[0].Args.Scc, 3);
  EXPECT_EQ(Events[1].Args.JoinOps, 9);
  EXPECT_EQ(EventCounters::TraceEvents.load(std::memory_order_relaxed), 3u);

  std::string Json = trace::writeChromeJson(Events);
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  // The quote-laden function name survives escaping (that is what the
  // validator is checking above), and unset args are omitted.
  EXPECT_NE(Json.find("fn_with_"), std::string::npos);
  EXPECT_NE(Json.find("\"join_ops\":9"), std::string::npos);
  EXPECT_NE(Json.find("\"cache\":\"hit\""), std::string::npos);
}

TEST(TraceTest, ThreadsGetTheirOwnLanes) {
  constexpr int kThreads = 3;
  constexpr int kSpansPerThread = 50;
  {
    Recording R;
    std::vector<std::thread> Threads;
    for (int T = 0; T < kThreads; ++T)
      Threads.emplace_back([T] {
        std::string Name = "hammer-" + std::to_string(T + 1);
        trace::setCurrentThreadName(Name.c_str());
        for (int I = 0; I < kSpansPerThread; ++I) {
          trace::TraceSpan Span("work", "test");
          if (Span.active())
            Span.Args.Scc = T * kSpansPerThread + I;
          trace::instant("beat", "test", I);
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
  }
  std::vector<trace::Event> Events = trace::collect();
  // main (named by start()) + 3 hammer threads registered buffers; only
  // the hammers recorded events.
  EXPECT_EQ(Events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread * 2);
  EXPECT_GE(trace::bufferCount(), static_cast<size_t>(kThreads));
  for (size_t I = 1; I < Events.size(); ++I) {
    EXPECT_LE(Events[I - 1].TsUs, Events[I].TsUs); // sorted by start time
  }
  std::string Json = trace::writeChromeJson(Events);
  ASSERT_TRUE(isValidJson(Json)) << "invalid JSON, " << Json.size()
                                 << " bytes";
  // One thread_name metadata record per lane, and >= 3 distinct lanes —
  // the Perfetto multi-lane acceptance shape.
  EXPECT_GE(countOccurrences(Json, "\"thread_name\""),
            static_cast<size_t>(kThreads));
  EXPECT_EQ(countOccurrences(Json, "\"hammer-2\""), 1u);
}

TEST(TraceTest, StartClearsPreviousRecording) {
  {
    Recording R;
    trace::TraceSpan Span("first", "test");
  }
  ASSERT_EQ(trace::collect().size(), 1u);
  {
    Recording R;
    trace::TraceSpan Span("second", "test");
  }
  {
    // Spans constructed after stop() are inert end to end.
    trace::TraceSpan Dropped("after-stop", "test");
    EXPECT_FALSE(Dropped.active());
  }
  std::vector<trace::Event> Events = trace::collect();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "second");
}

TEST(TraceTest, ProfileAggregatesSccSpans) {
  {
    Recording R;
    {
      trace::TraceSpan Gen("generate", "scc");
      Gen.Args.Scc = 0;
      Gen.Args.Fn = "hot_fn";
      Gen.Args.Backend = "retypd";
      Gen.Args.Constraints = 10;
      Gen.Args.Cache = "miss";
    }
    {
      trace::TraceSpan Simp("simplify", "scc");
      Simp.Args.Scc = 0;
      Simp.Args.Backend = "retypd";
      Simp.Args.Constraints = 12;
      Simp.Args.Cache = "hit";
    }
    {
      trace::TraceSpan Ref("refine", "scc");
      Ref.Args.Scc = 0;
      Ref.Args.JoinOps = 4;
    }
    {
      trace::TraceSpan Ref("refine", "scc");
      Ref.Args.Scc = 0;
      Ref.Args.JoinOps = 3;
    }
    {
      trace::TraceSpan Other("solve", "scc");
      Other.Args.Scc = 1;
      Other.Args.Fn = "cold_fn";
    }
    // Non-"scc" categories never reach the profile.
    trace::TraceSpan Phase("phase1", "phase");
  }
  std::vector<trace::ProfileRow> Rows =
      trace::buildProfile(trace::collect());
  ASSERT_EQ(Rows.size(), 2u);
  const trace::ProfileRow *Hot = nullptr;
  for (const trace::ProfileRow &Row : Rows)
    if (Row.Scc == 0)
      Hot = &Row;
  ASSERT_NE(Hot, nullptr);
  EXPECT_EQ(Hot->Fn, "hot_fn");
  EXPECT_EQ(Hot->Backend, "retypd");
  EXPECT_EQ(Hot->Constraints, 12); // max across the SCC's spans
  EXPECT_EQ(Hot->JoinOps, 7);      // summed across refine spans
  EXPECT_EQ(Hot->GenCache, "miss");
  EXPECT_EQ(Hot->SchemeCache, "hit");
  EXPECT_GT(Hot->TotalSecs, 0.0);

  std::string Table = trace::renderProfileTable(Rows, 10, 1.0);
  EXPECT_NE(Table.find("hot_fn"), std::string::npos);
  EXPECT_NE(Table.find("attributed"), std::string::npos);
  std::string Json = trace::profileJson(Rows, 10);
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"join_ops\": 7"), std::string::npos);
  // N truncates.
  EXPECT_EQ(countOccurrences(trace::profileJson(Rows, 1), "\"scc\""), 1u);
}

TEST(TraceTest, ConcurrentHammerIsRaceFree) {
  // tsan target: spans, instants, and thread registration from many
  // threads at once, twice (the second recording re-registers every
  // thread buffer through the generation check).
  for (int Round = 0; Round < 2; ++Round) {
    Recording R;
    std::atomic<int> Go{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T < 4; ++T)
      Threads.emplace_back([&Go] {
        Go.fetch_add(1);
        while (Go.load() < 4) {
        } // line up for maximum overlap
        for (int I = 0; I < 200; ++I) {
          trace::TraceSpan Span("hammer", "test");
          if (Span.active())
            Span.Args.Constraints = I;
          if (I % 8 == 0)
            trace::instant("mark", "test", I);
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
    EXPECT_EQ(trace::collect().size(), 4u * (200 + 25));
  }
}
