//===- UnionFindTest.cpp - Disjoint set unit tests -------------------------===//

#include "support/UnionFind.h"

#include <gtest/gtest.h>

using namespace retypd;

TEST(UnionFind, SingletonsAreTheirOwnReps) {
  UnionFind UF(4);
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(UF.find(I), I);
}

TEST(UnionFind, UniteMergesTransitively) {
  UnionFind UF(5);
  UF.unite(0, 1);
  UF.unite(1, 2);
  EXPECT_TRUE(UF.same(0, 2));
  EXPECT_FALSE(UF.same(0, 3));
  UF.unite(3, 4);
  UF.unite(2, 3);
  EXPECT_TRUE(UF.same(0, 4));
}

TEST(UnionFind, MakeSetExtends) {
  UnionFind UF;
  uint32_t A = UF.makeSet();
  uint32_t B = UF.makeSet();
  EXPECT_NE(A, B);
  EXPECT_EQ(UF.unite(A, B), UF.find(A));
}

TEST(UnionFind, GrowPreservesExistingSets) {
  UnionFind UF(2);
  UF.unite(0, 1);
  UF.grow(10);
  EXPECT_TRUE(UF.same(0, 1));
  EXPECT_FALSE(UF.same(0, 9));
}
