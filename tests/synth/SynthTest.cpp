//===- SynthTest.cpp - Generator and metric tests -----------------------------===//

#include "absint/ConcreteInterp.h"
#include "baseline/Baselines.h"
#include "eval/Metrics.h"
#include "frontend/Pipeline.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

using namespace retypd;

namespace {

class SynthTest : public ::testing::Test {
protected:
  SynthTest() : Lat(makeDefaultLattice()) {}
  Lattice Lat;
  SynthGenerator Gen;
};

} // namespace

TEST_F(SynthTest, GeneratesParsableProgramsOfRequestedSize) {
  SynthOptions Opts;
  Opts.Seed = 42;
  Opts.TargetInstructions = 300;
  SynthProgram P = Gen.generate("prog", Opts);
  EXPECT_GE(P.M.instructionCount(), 300u);
  EXPECT_LE(P.M.instructionCount(), 900u);
  EXPECT_TRUE(P.M.findFunction("main").has_value());
  EXPECT_GE(P.Truth->Funcs.size(), 10u);
}

TEST_F(SynthTest, DeterministicGivenSeed) {
  SynthOptions Opts;
  Opts.Seed = 7;
  Opts.TargetInstructions = 200;
  SynthProgram A = Gen.generate("a", Opts);
  SynthProgram B = Gen.generate("b", Opts);
  EXPECT_EQ(A.AsmText, B.AsmText);
}

TEST_F(SynthTest, DifferentSeedsDiffer) {
  SynthOptions A, B;
  A.Seed = 1;
  B.Seed = 2;
  A.TargetInstructions = B.TargetInstructions = 200;
  EXPECT_NE(Gen.generate("a", A).AsmText, Gen.generate("b", B).AsmText);
}

TEST_F(SynthTest, GeneratedProgramsExecute) {
  SynthOptions Opts;
  Opts.Seed = 3;
  Opts.TargetInstructions = 150;
  SynthProgram P = Gen.generate("prog", Opts);
  ConcreteInterp CI(P.M);
  CI.setExternal("open", [](ConcreteInterp &) { return 3u; });
  CI.setExternal("read", [](ConcreteInterp &) { return 0u; });
  CI.setExternal("strlen", [](ConcreteInterp &) { return 0u; });
  CI.setExternal("memcpy", [](ConcreteInterp &CI2) { return CI2.arg(0); });
  EXPECT_TRUE(CI.run(1u << 22)) << CI.error();
}

TEST_F(SynthTest, ClustersShareCommonCode) {
  auto Programs = Gen.generateCluster("cl", 3, 200, 11);
  ASSERT_EQ(Programs.size(), 3u);
  // The shared prefix (common utility base) is byte-identical.
  auto Prefix = [](const std::string &A, const std::string &B) {
    size_t N = 0;
    while (N < A.size() && N < B.size() && A[N] == B[N])
      ++N;
    return N;
  };
  size_t P01 = Prefix(Programs[0].AsmText, Programs[1].AsmText);
  EXPECT_GT(P01, Programs[0].AsmText.size() / 3);
  // But the tails differ.
  EXPECT_NE(Programs[0].AsmText, Programs[1].AsmText);
}

TEST_F(SynthTest, PipelineHandlesGeneratedPrograms) {
  SynthOptions Opts;
  Opts.Seed = 5;
  Opts.TargetInstructions = 250;
  SynthProgram P = Gen.generate("prog", Opts);
  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(P.M);
  EXPECT_GT(R.Funcs.size(), 10u);
}

TEST_F(SynthTest, MetricsFavorRetypdOverBaselines) {
  SynthOptions Opts;
  Opts.Seed = 9;
  Opts.TargetInstructions = 400;
  SynthProgram P = Gen.generate("prog", Opts);
  Evaluator Eval(Lat);

  Module M1 = P.M;
  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(M1);
  MetricSummary Retypd = Eval.scoreRetypd(M1, R, *P.Truth);

  Module M2 = P.M;
  UnificationInference Unif(Lat);
  MetricSummary U = Eval.scoreBaseline(M2, Unif.run(M2), *P.Truth);

  Module M3 = P.M;
  IntervalInference Intv(Lat);
  MetricSummary T = Eval.scoreBaseline(M3, Intv.run(M3), *P.Truth);

  ASSERT_GT(Retypd.Slots, 20u);
  // The paper's headline shape: Retypd's distance beats both baselines and
  // its conservativeness is at least as good as unification's.
  EXPECT_LT(Retypd.meanDistance(), U.meanDistance());
  EXPECT_LT(Retypd.meanDistance(), T.meanDistance());
  EXPECT_GE(Retypd.conservativeness(), U.conservativeness());
  EXPECT_GE(Retypd.pointerAccuracy(), 0.8);
}

TEST_F(SynthTest, ConstRecallIsHigh) {
  SynthOptions Opts;
  Opts.Seed = 13;
  Opts.TargetInstructions = 400;
  SynthProgram P = Gen.generate("prog", Opts);
  Module M = P.M;
  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(M);
  Evaluator Eval(Lat);
  MetricSummary S = Eval.scoreRetypd(M, R, *P.Truth);
  ASSERT_GT(S.ConstTruth, 5u);
  EXPECT_GE(S.constRecall(), 0.9);
}
