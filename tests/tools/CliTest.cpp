//===- CliTest.cpp - retypd-cli subcommand behavior ---------------------------===//
//
// Drives the installed retypd-cli binary (path injected by CMake as
// RETYPD_CLI_PATH) through its subcommand surface: unknown-option
// rejection with "did you mean" hints and exit code 2, reanalyze's
// byte-identity with a fresh analyze, JSON output, and the cache
// inspect/prune verbs.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct CmdResult {
  int Exit = -1;
  std::string Out; ///< stdout + stderr, interleaved
};

/// Runs the CLI with \p Args, capturing combined output and the exit code.
CmdResult runCli(const std::string &Args) {
  CmdResult R;
  std::string Cmd = std::string(RETYPD_CLI_PATH) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Out.append(Buf, N);
  int Status = pclose(P);
  R.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string goldenAsm(const char *Name) {
  return (fs::path(RETYPD_SOURCE_DIR) / "tests" / "frontend" / "golden" /
          Name)
      .string();
}

fs::path writeTemp(const char *Name, const std::string &Content) {
  fs::path P = fs::temp_directory_path() / Name;
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out << Content;
  return P;
}

std::string slurpFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::string S((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  return S;
}

} // namespace

TEST(CliTest, UnknownOptionExitsTwoWithSuggestion) {
  CmdResult R = runCli("--schmes " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("unknown option '--schmes'"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("did you mean '--schemes'?"), std::string::npos)
      << R.Out;

  // Subcommand spelling gets the same treatment.
  R = runCli("analyze --jbos 2 " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("did you mean '--jobs'?"), std::string::npos) << R.Out;
}

TEST(CliTest, UnknownCommandSuggestion) {
  CmdResult R = runCli("analize " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("did you mean 'analyze'?"), std::string::npos) << R.Out;
}

TEST(CliTest, LegacyInvocationStillMeansAnalyze) {
  CmdResult Legacy = runCli("--schemes " + goldenAsm("list_traverse.asm"));
  CmdResult Sub = runCli("analyze --schemes " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Legacy.Exit, 0);
  EXPECT_EQ(Legacy.Out, Sub.Out);
}

TEST(CliTest, ReanalyzeIsByteIdenticalToFreshAnalyze) {
  // base + edited pair: the edited module appends a function and rewires
  // nothing else; reanalyze(base, edited) must print exactly what
  // analyze(edited) prints.
  std::string Base = slurpFile(goldenAsm("list_traverse.asm"));
  std::string Edited =
      Base + "\nfn extra_leaf:\n  load eax, [esp+4]\n  add eax, 1\n  ret\n";
  fs::path BaseP = writeTemp("cli_base.asm", Base);
  fs::path EditedP = writeTemp("cli_edited.asm", Edited);

  for (const char *Flags : {"", "--schemes --sketches", "--jobs 4"}) {
    CmdResult Fresh = runCli(std::string("analyze ") + Flags + " " +
                             EditedP.string());
    CmdResult Re = runCli(std::string("reanalyze ") + Flags + " " +
                          BaseP.string() + " " + EditedP.string());
    EXPECT_EQ(Fresh.Exit, 0) << Fresh.Out;
    EXPECT_EQ(Re.Exit, 0) << Re.Out;
    EXPECT_EQ(Fresh.Out, Re.Out) << "flags: " << Flags;
  }
  fs::remove(BaseP);
  fs::remove(EditedP);
}

TEST(CliTest, ReanalyzeStatsShowIncrementalReuse) {
  std::string Base = slurpFile(goldenAsm("list_traverse.asm"));
  std::string Edited =
      Base + "\nfn extra_leaf:\n  load eax, [esp+4]\n  add eax, 1\n  ret\n";
  fs::path BaseP = writeTemp("cli_base2.asm", Base);
  fs::path EditedP = writeTemp("cli_edited2.asm", Edited);

  CmdResult R = runCli("reanalyze --stats " + BaseP.string() + " " +
                       EditedP.string());
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("incremental: yes"), std::string::npos) << R.Out;
  // The unchanged functions' SCCs must be reused, not re-simplified.
  EXPECT_NE(R.Out.find("sccs_reused=2"), std::string::npos) << R.Out;
  fs::remove(BaseP);
  fs::remove(EditedP);
}

TEST(CliTest, JsonFormat) {
  CmdResult R = runCli("analyze --format=json --schemes " +
                       goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("\"schema\": \"retypd-report-v1\""), std::string::npos);
  EXPECT_NE(R.Out.find("\"prototype\": "), std::string::npos);
  EXPECT_NE(R.Out.find("\"scheme\": "), std::string::npos);
  // Externals are reported with a structured status instead of "<no type>".
  EXPECT_NE(R.Out.find("\"status\": \"no-type-inferred\""), std::string::npos);
  EXPECT_EQ(R.Out.find("\"stats\""), std::string::npos) << "stats without flag";

  R = runCli("analyze --format=json --stats " + goldenAsm("list_traverse.asm"));
  EXPECT_NE(R.Out.find("\"stats\": {"), std::string::npos);
  EXPECT_NE(R.Out.find("\"sccs_simplified\""), std::string::npos);

  R = runCli("analyze --format=yaml " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
}

TEST(CliTest, CacheInspectAndPrune) {
  fs::path Cache = fs::temp_directory_path() / "cli_cache.bin";
  fs::remove(Cache);

  CmdResult R = runCli("analyze --summary-cache " + Cache.string() + " " +
                       goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0);

  R = runCli("cache inspect " + Cache.string());
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("header: ok (v3 schema 2)"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("codec: binary scheme payload v2"), std::string::npos)
      << R.Out;
  // Per-shard entry counts are part of the report.
  EXPECT_NE(R.Out.find("shard entries: 0:"), std::string::npos) << R.Out;

  R = runCli("cache prune " + Cache.string() + " --max-bytes 0");
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("0 remain"), std::string::npos) << R.Out;

  // Stale-but-recognized formats (the textual v2 of earlier builds, the
  // unversioned v1) get an actionable message, not a generic failure.
  fs::path StaleV2 = writeTemp("cli_stale_cache_v2.bin",
                               "retypd-summary-cache v2 schema 1\n"
                               "entry 00000000000000000000000000000000 2\n"
                               "xx\n");
  R = runCli("cache inspect " + StaleV2.string());
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("re-run analyze to regenerate"), std::string::npos)
      << R.Out;
  R = runCli("cache prune " + StaleV2.string() + " --max-bytes 0");
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("re-run analyze to regenerate"), std::string::npos)
      << R.Out;

  fs::path Stale = writeTemp("cli_stale_cache.bin",
                             "retypd-summary-cache-v1\nentry junk\n");
  R = runCli("cache inspect " + Stale.string());
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("re-run analyze to regenerate"), std::string::npos)
      << R.Out;

  // A file that is not a cache at all stays a plain unrecognized-header
  // error.
  fs::path NotACache = writeTemp("cli_not_cache.bin", "hello world\n");
  R = runCli("cache inspect " + NotACache.string());
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("unrecognized header"), std::string::npos) << R.Out;

  R = runCli("cache inspct " + Cache.string());
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("did you mean 'inspect'?"), std::string::npos) << R.Out;

  fs::remove(Cache);
  fs::remove(StaleV2);
  fs::remove(Stale);
  fs::remove(NotACache);
}

TEST(CliTest, HelpExitsZero) {
  CmdResult R = runCli("help");
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("reanalyze"), std::string::npos);
}
