//===- CliTest.cpp - retypd-cli subcommand behavior ---------------------------===//
//
// Drives the installed retypd-cli binary (path injected by CMake as
// RETYPD_CLI_PATH) through its subcommand surface: unknown-option
// rejection with "did you mean" hints and exit code 2, reanalyze's
// byte-identity with a fresh analyze, JSON output, and the cache
// inspect/prune verbs.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct CmdResult {
  int Exit = -1;
  std::string Out; ///< stdout + stderr, interleaved
};

/// Runs the CLI with \p Args, capturing combined output and the exit code.
CmdResult runCli(const std::string &Args) {
  CmdResult R;
  std::string Cmd = std::string(RETYPD_CLI_PATH) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Out.append(Buf, N);
  int Status = pclose(P);
  R.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string goldenAsm(const char *Name) {
  return (fs::path(RETYPD_SOURCE_DIR) / "tests" / "frontend" / "golden" /
          Name)
      .string();
}

fs::path writeTemp(const char *Name, const std::string &Content) {
  fs::path P = fs::temp_directory_path() / Name;
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out << Content;
  return P;
}

std::string slurpFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::string S((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  return S;
}

} // namespace

TEST(CliTest, UnknownOptionExitsTwoWithSuggestion) {
  CmdResult R = runCli("--schmes " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("unknown option '--schmes'"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("did you mean '--schemes'?"), std::string::npos)
      << R.Out;

  // Subcommand spelling gets the same treatment.
  R = runCli("analyze --jbos 2 " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("did you mean '--jobs'?"), std::string::npos) << R.Out;
}

TEST(CliTest, UnknownCommandSuggestion) {
  CmdResult R = runCli("analize " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("did you mean 'analyze'?"), std::string::npos) << R.Out;
}

TEST(CliTest, LegacyInvocationStillMeansAnalyze) {
  CmdResult Legacy = runCli("--schemes " + goldenAsm("list_traverse.asm"));
  CmdResult Sub = runCli("analyze --schemes " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Legacy.Exit, 0);
  EXPECT_EQ(Legacy.Out, Sub.Out);
}

TEST(CliTest, ReanalyzeIsByteIdenticalToFreshAnalyze) {
  // base + edited pair: the edited module appends a function and rewires
  // nothing else; reanalyze(base, edited) must print exactly what
  // analyze(edited) prints.
  std::string Base = slurpFile(goldenAsm("list_traverse.asm"));
  std::string Edited =
      Base + "\nfn extra_leaf:\n  load eax, [esp+4]\n  add eax, 1\n  ret\n";
  fs::path BaseP = writeTemp("cli_base.asm", Base);
  fs::path EditedP = writeTemp("cli_edited.asm", Edited);

  for (const char *Flags : {"", "--schemes --sketches", "--jobs 4"}) {
    CmdResult Fresh = runCli(std::string("analyze ") + Flags + " " +
                             EditedP.string());
    CmdResult Re = runCli(std::string("reanalyze ") + Flags + " " +
                          BaseP.string() + " " + EditedP.string());
    EXPECT_EQ(Fresh.Exit, 0) << Fresh.Out;
    EXPECT_EQ(Re.Exit, 0) << Re.Out;
    EXPECT_EQ(Fresh.Out, Re.Out) << "flags: " << Flags;
  }
  fs::remove(BaseP);
  fs::remove(EditedP);
}

TEST(CliTest, ReanalyzeStatsShowIncrementalReuse) {
  std::string Base = slurpFile(goldenAsm("list_traverse.asm"));
  std::string Edited =
      Base + "\nfn extra_leaf:\n  load eax, [esp+4]\n  add eax, 1\n  ret\n";
  fs::path BaseP = writeTemp("cli_base2.asm", Base);
  fs::path EditedP = writeTemp("cli_edited2.asm", Edited);

  CmdResult R = runCli("reanalyze --stats " + BaseP.string() + " " +
                       EditedP.string());
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("incremental: yes"), std::string::npos) << R.Out;
  // The unchanged functions' SCCs must be reused, not re-simplified.
  EXPECT_NE(R.Out.find("sccs_reused=2"), std::string::npos) << R.Out;
  fs::remove(BaseP);
  fs::remove(EditedP);
}

TEST(CliTest, JsonFormat) {
  CmdResult R = runCli("analyze --format=json --schemes " +
                       goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("\"schema\": \"retypd-report-v1\""), std::string::npos);
  EXPECT_NE(R.Out.find("\"prototype\": "), std::string::npos);
  EXPECT_NE(R.Out.find("\"scheme\": "), std::string::npos);
  // Externals are reported with a structured status instead of "<no type>".
  EXPECT_NE(R.Out.find("\"status\": \"no-type-inferred\""), std::string::npos);
  EXPECT_EQ(R.Out.find("\"stats\""), std::string::npos) << "stats without flag";

  R = runCli("analyze --format=json --stats " + goldenAsm("list_traverse.asm"));
  EXPECT_NE(R.Out.find("\"stats\": {"), std::string::npos);
  EXPECT_NE(R.Out.find("\"sccs_simplified\""), std::string::npos);

  R = runCli("analyze --format=yaml " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
}

TEST(CliTest, CacheInspectAndPrune) {
  fs::path Cache = fs::temp_directory_path() / "cli_cache.bin";
  fs::remove(Cache);

  CmdResult R = runCli("analyze --summary-cache " + Cache.string() + " " +
                       goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0);

  R = runCli("cache inspect " + Cache.string());
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("header: ok (v3 schema 3)"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("codec: binary scheme payload v3"), std::string::npos)
      << R.Out;
  // Per-shard entry counts are part of the report.
  EXPECT_NE(R.Out.find("shard entries: 0:"), std::string::npos) << R.Out;

  R = runCli("cache prune " + Cache.string() + " --max-bytes 0");
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("0 remain"), std::string::npos) << R.Out;

  // Stale-but-recognized formats (the textual v2 of earlier builds, the
  // unversioned v1) get an actionable message, not a generic failure.
  fs::path StaleV2 = writeTemp("cli_stale_cache_v2.bin",
                               "retypd-summary-cache v2 schema 1\n"
                               "entry 00000000000000000000000000000000 2\n"
                               "xx\n");
  R = runCli("cache inspect " + StaleV2.string());
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("re-run analyze to regenerate"), std::string::npos)
      << R.Out;
  R = runCli("cache prune " + StaleV2.string() + " --max-bytes 0");
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("re-run analyze to regenerate"), std::string::npos)
      << R.Out;

  fs::path Stale = writeTemp("cli_stale_cache.bin",
                             "retypd-summary-cache-v1\nentry junk\n");
  R = runCli("cache inspect " + Stale.string());
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("re-run analyze to regenerate"), std::string::npos)
      << R.Out;

  // A file that is not a cache at all stays a plain unrecognized-header
  // error.
  fs::path NotACache = writeTemp("cli_not_cache.bin", "hello world\n");
  R = runCli("cache inspect " + NotACache.string());
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("unrecognized header"), std::string::npos) << R.Out;

  R = runCli("cache inspct " + Cache.string());
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("did you mean 'inspect'?"), std::string::npos) << R.Out;

  fs::remove(Cache);
  fs::remove(StaleV2);
  fs::remove(Stale);
  fs::remove(NotACache);
}

TEST(CliTest, HelpExitsZero) {
  CmdResult R = runCli("help");
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("reanalyze"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Artifact store (--store DIR, cache verbs on directories)
//===----------------------------------------------------------------------===//

TEST(CliTest, StoreAnalyzeWarmInspectCompact) {
  fs::path Dir = fs::temp_directory_path() / "cli_store";
  fs::remove_all(Dir);

  // Cold run journals; warm run replays from the store, byte-identically
  // to a storeless run.
  CmdResult Cold = runCli("analyze --store " + Dir.string() + " " +
                          goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Cold.Exit, 0) << Cold.Out;
  CmdResult Plain = runCli("analyze " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Cold.Out, Plain.Out);

  CmdResult Warm = runCli("analyze --store " + Dir.string() +
                          " --stats --format=json " +
                          goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Warm.Exit, 0) << Warm.Out;
  EXPECT_EQ(Warm.Out.find("\"store_hits\": 0,"), std::string::npos)
      << "warm run served nothing from the store: " << Warm.Out;
  EXPECT_NE(Warm.Out.find("\"cache_misses\": 0,"), std::string::npos)
      << Warm.Out;

  // inspect: generation, per-segment record counts, live/dead bytes.
  CmdResult R = runCli("cache inspect " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("header: ok (v1 schema 3)"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("generation: 1"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("segment seg-000001-000000.rseg: records"),
            std::string::npos)
      << R.Out;

  // compact bumps the generation; the store still warm-serves.
  R = runCli("cache compact " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("compacted to generation 2"), std::string::npos)
      << R.Out;
  Warm = runCli("analyze --store " + Dir.string() + " " +
                goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Warm.Out, Plain.Out);

  // prune on a store directory reuses the --max-bytes contract.
  R = runCli("cache prune " + Dir.string() + " --max-bytes 0");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("0 remain"), std::string::npos) << R.Out;

  // compact on a FILE is rejected with guidance.
  fs::path File = writeTemp("cli_store_file.bin", "not a dir");
  R = runCli("cache compact " + File.string());
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("artifact store directory"), std::string::npos)
      << R.Out;
  fs::remove(File);

  // Mutating verbs on a directory with unrelated contents (a mistyped
  // path) refuse without polluting it with a fresh MANIFEST/LOCK/segment.
  fs::path PlainDir = fs::temp_directory_path() / "cli_store_plain_dir";
  fs::remove_all(PlainDir);
  fs::create_directories(PlainDir);
  { std::ofstream Junk(PlainDir / "notes.txt", std::ios::binary); Junk << "x"; }
  for (const char *Verb : {"compact ", "prune --max-bytes 0 "}) {
    R = runCli("cache " + std::string(Verb) + PlainDir.string());
    EXPECT_EQ(R.Exit, 1) << Verb << R.Out;
    EXPECT_NE(R.Out.find("not an artifact store"), std::string::npos)
        << Verb << R.Out;
  }
  size_t Entries = 0;
  for ([[maybe_unused]] const auto &E : fs::directory_iterator(PlainDir))
    ++Entries;
  EXPECT_EQ(Entries, 1u) << "cache verb polluted a plain dir";
  fs::remove_all(PlainDir);
  fs::remove_all(Dir);
}

TEST(CliTest, EmptyOrFreshStoreDirIsCleanZeroState) {
  // An empty directory — the state a `--store` path is in before the
  // first analyze — is a zero-state store for every verb, not an error,
  // and the verbs must leave it empty.
  fs::path Dir = fs::temp_directory_path() / "cli_store_empty_dir";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  CmdResult R = runCli("cache inspect " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("empty store (not yet initialized)"),
            std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("keys: 0"), std::string::npos) << R.Out;
  R = runCli("cache inspect --format=json " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("\"ok\": true"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("\"empty\": true"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("\"keys\": 0"), std::string::npos) << R.Out;
  R = runCli("cache compact " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("nothing to compact"), std::string::npos) << R.Out;
  R = runCli("cache prune " + Dir.string() + " --max-bytes 0");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("nothing to prune"), std::string::npos) << R.Out;
  EXPECT_TRUE(fs::is_empty(Dir)) << "zero-state verbs must not create files";

  // A freshly-initialized MANIFEST-only store (generation line written,
  // no segments yet) is a valid empty store: inspect reports zero
  // counts, prune no-ops, and a later analyze appends into it in place.
  fs::path Fresh = fs::temp_directory_path() / "cli_store_fresh";
  fs::remove_all(Fresh);
  fs::create_directories(Fresh);
  {
    std::ofstream M(Fresh / "MANIFEST", std::ios::binary);
    M << "retypd-store v1 schema 3\ngeneration 0\n";
  }
  R = runCli("cache inspect " + Fresh.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("header: ok (v1 schema 3)"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("keys: 0"), std::string::npos) << R.Out;
  R = runCli("cache prune " + Fresh.string() + " --max-bytes 0");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("pruned 0 of 0"), std::string::npos) << R.Out;
  R = runCli("analyze --store " + Fresh.string() + " " +
             goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
  R = runCli("cache inspect " + Fresh.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_EQ(R.Out.find("keys: 0"), std::string::npos)
      << "analyze against a fresh store left it empty: " << R.Out;
  fs::remove_all(Dir);
  fs::remove_all(Fresh);
}

TEST(CliTest, StaleStoreGetsActionableMessageAndAnalyzeRegenerates) {
  fs::path Dir = fs::temp_directory_path() / "cli_stale_store";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  {
    std::ofstream M(Dir / "MANIFEST", std::ios::binary);
    M << "retypd-store v1 schema 1\ngeneration 1\n"
         "segment seg-000001-000000.rseg\n";
    std::ofstream S(Dir / "seg-000001-000000.rseg", std::ios::binary);
    S << "retypd-segment v1 schema 1\n";
  }
  CmdResult R = runCli("cache inspect " + Dir.string());
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("re-run analyze to regenerate"), std::string::npos)
      << R.Out;
  // compact refuses a stale store the same way...
  R = runCli("cache compact " + Dir.string());
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Out.find("re-run analyze to regenerate"), std::string::npos)
      << R.Out;
  // ...and analyze actually does regenerate it.
  R = runCli("analyze --store " + Dir.string() + " " +
             goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
  R = runCli("cache inspect " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("header: ok (v1 schema 3)"), std::string::npos)
      << R.Out;
  fs::remove_all(Dir);
}

TEST(CliTest, CrossProcessHammerLeavesStoreCleanAndDecodable) {
  // N real retypd-cli processes append to and read from ONE store
  // directory concurrently (popen starts them all before any pclose
  // reaps). The advisory-lock append protocol must keep the store
  // uncorrupted: it opens clean afterwards, and a warm run over it is
  // byte-identical to a storeless run for every program involved.
  fs::path Dir = fs::temp_directory_path() / "cli_store_hammer";
  fs::remove_all(Dir);

  const char *Programs[] = {"list_traverse.asm", "callbacks.asm",
                            "mutual_rec.asm"};
  std::vector<FILE *> Children;
  for (int Round = 0; Round < 2; ++Round)
    for (const char *Prog : Programs) {
      std::string Cmd = std::string(RETYPD_CLI_PATH) + " analyze --store " +
                        Dir.string() + " " + goldenAsm(Prog) +
                        " > /dev/null 2>&1";
      FILE *P = popen(Cmd.c_str(), "r");
      ASSERT_NE(P, nullptr);
      Children.push_back(P);
    }
  for (FILE *P : Children) {
    int Status = pclose(P);
    EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
        << "hammer child failed";
  }

  // The store opens clean: no corrupt records in any segment.
  CmdResult R = runCli("cache inspect --format=json " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  auto Count = [&](const std::string &Needle) {
    size_t N = 0;
    for (size_t Pos = R.Out.find(Needle); Pos != std::string::npos;
         Pos = R.Out.find(Needle, Pos + 1))
      ++N;
    return N;
  };
  EXPECT_GT(Count("\"corrupt_records\": "), 0u) << R.Out;
  EXPECT_EQ(Count("\"corrupt_records\": "), Count("\"corrupt_records\": 0"))
      << "hammer corrupted a record: " << R.Out;

  // Every surviving key decodes: warm runs replay each program with zero
  // misses, and the report proper matches the storeless output byte for
  // byte (--stats is omitted from the identity check — its cache counter
  // comment is SUPPOSED to differ between a cached and an uncached run).
  for (const char *Prog : Programs) {
    CmdResult Warm = runCli("analyze --store " + Dir.string() + " " +
                            goldenAsm(Prog));
    CmdResult Plain = runCli("analyze " + goldenAsm(Prog));
    EXPECT_EQ(Warm.Exit, 0) << Warm.Out;
    EXPECT_EQ(Warm.Out, Plain.Out) << Prog;
    CmdResult Stats = runCli("analyze --store " + Dir.string() +
                             " --stats " + goldenAsm(Prog));
    EXPECT_NE(Stats.Out.find("cache_misses=0"), std::string::npos)
        << Prog << ": " << Stats.Out;
  }

  // And compaction folds the duplicate-append debris away.
  R = runCli("cache compact " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Verification surfaces (--verify, module verifier, cache verify)
//===----------------------------------------------------------------------===//

TEST(CliTest, MalformedAsmExitsTwoListingEveryError) {
  // Structurally malformed input must never reach constraint generation:
  // exit 2, and ALL violations are reported, not just the first.
  fs::path Bad = writeTemp("cli_bad_module.asm",
                           "fn f:\n"
                           "  jz end\n"
                           "end:\n"
                           "fn f:\n"
                           "  ret\n");
  CmdResult R = runCli("analyze " + Bad.string());
  EXPECT_EQ(R.Exit, 2) << R.Out;
  EXPECT_NE(R.Out.find("duplicate function name 'f'"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("branch target"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("falls off the end"), std::string::npos) << R.Out;
  // file:line positions come from the parser's line table.
  EXPECT_NE(R.Out.find(Bad.string() + ":2: error:"), std::string::npos)
      << R.Out;
  fs::remove(Bad);
}

TEST(CliTest, VerifyFlagParsesAndRunsCleanOnGoldens) {
  CmdResult R = runCli("analyze --verify=full " +
                       goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
  CmdResult Plain = runCli("analyze " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Out, Plain.Out) << "--verify=full changed the report";

  R = runCli("analyze --verify=banana " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("--verify expects off, phase or full"),
            std::string::npos)
      << R.Out;

  R = runCli("reanalyze --verify=phase " + goldenAsm("list_traverse.asm") +
             " " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
}

TEST(CliTest, CacheVerifyCleanAndCorrupt) {
  fs::path Dir = fs::temp_directory_path() / "cli_store_verify";
  fs::remove_all(Dir);

  // Empty dir: vacuously clean, untouched.
  fs::create_directories(Dir);
  CmdResult R = runCli("cache verify " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("empty store"), std::string::npos) << R.Out;
  EXPECT_TRUE(fs::is_empty(Dir)) << "cache verify polluted an empty dir";

  CmdResult Pop = runCli("analyze --store " + Dir.string() + " " +
                         goldenAsm("list_traverse.asm"));
  ASSERT_EQ(Pop.Exit, 0) << Pop.Out;

  R = runCli("cache verify " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find(": clean"), std::string::npos) << R.Out;
  R = runCli("cache verify --format=json " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("\"clean\": true"), std::string::npos) << R.Out;

  // Flip one byte of the segment: nonzero exit naming file+offset+key.
  fs::path Seg;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".rseg")
      Seg = E.path();
  ASSERT_FALSE(Seg.empty());
  std::string Bytes = slurpFile(Seg);
  ASSERT_GT(Bytes.size(), 100u);
  Bytes[100] = static_cast<char>(Bytes[100] ^ 0xff);
  {
    std::ofstream Out(Seg, std::ios::binary | std::ios::trunc);
    Out << Bytes;
  }
  R = runCli("cache verify " + Dir.string());
  EXPECT_EQ(R.Exit, 1) << R.Out;
  EXPECT_NE(R.Out.find(Seg.filename().string() + ":"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("key "), std::string::npos) << R.Out;
  R = runCli("cache verify --format=json " + Dir.string());
  EXPECT_EQ(R.Exit, 1) << R.Out;
  EXPECT_NE(R.Out.find("\"clean\": false"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("\"offset\": "), std::string::npos) << R.Out;

  // verify on a FILE is rejected with guidance.
  fs::path File = writeTemp("cli_verify_file.bin", "not a dir");
  R = runCli("cache verify " + File.string());
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("artifact store directory"), std::string::npos)
      << R.Out;
  fs::remove(File);
  fs::remove_all(Dir);
}

TEST(CliTest, BackendFlagSelectsAndMisspellingExitsTwo) {
  // --backend=binsub runs end-to-end and the stats line attributes it.
  CmdResult R = runCli("analyze --backend=binsub --stats " +
                       goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("backend=binsub"), std::string::npos) << R.Out;

  // The default spelled out explicitly is the same as omitting the flag.
  CmdResult Explicit = runCli("analyze --backend=retypd --schemes " +
                              goldenAsm("list_traverse.asm"));
  CmdResult Implicit =
      runCli("analyze --schemes " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Explicit.Exit, 0);
  EXPECT_EQ(Explicit.Out, Implicit.Out);

  // JSON stats carry the backend too.
  R = runCli("analyze --backend=binsub --format=json --stats " +
             goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("\"backend\": \"binsub\""), std::string::npos) << R.Out;

  // An unknown backend must exit 2 with a hint — never fall back silently.
  R = runCli("analyze --backend=binsab " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("--backend expects retypd or binsub, got 'binsab'"),
            std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("did you mean 'binsub'?"), std::string::npos) << R.Out;

  // No-hint spelling still exits 2.
  R = runCli("analyze --backend=zzz " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);

  // reanalyze accepts the flag as well.
  R = runCli("reanalyze --backend=binsub " + goldenAsm("list_traverse.asm") +
             " " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
}

//===----------------------------------------------------------------------===//
// Tracing & profiling (--trace, --profile)
//===----------------------------------------------------------------------===//

TEST(CliTest, TraceWritesChromeJsonWithoutPerturbingTheReport) {
  fs::path TraceFile = fs::temp_directory_path() / "cli_trace.json";
  fs::remove(TraceFile);

  CmdResult Plain = runCli("analyze " + goldenAsm("list_traverse.asm"));
  CmdResult Traced = runCli("analyze --trace " + TraceFile.string() + " " +
                            goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Traced.Exit, 0) << Traced.Out;
  EXPECT_EQ(Traced.Out, Plain.Out) << "--trace changed the report";

  std::string Json = slurpFile(TraceFile);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
  // Per-SCC spans carry the structured args the profiler aggregates.
  EXPECT_NE(Json.find("\"cat\":\"scc\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"backend\":\"retypd\""), std::string::npos);
  EXPECT_NE(Json.find("\"constraints\":"), std::string::npos);

  // --trace=FILE spelling works too, and reanalyze records both runs.
  fs::path TraceFile2 = fs::temp_directory_path() / "cli_trace2.json";
  CmdResult Re = runCli("reanalyze --trace=" + TraceFile2.string() + " " +
                        goldenAsm("list_traverse.asm") + " " +
                        goldenAsm("list_traverse.asm"));
  EXPECT_EQ(Re.Exit, 0) << Re.Out;
  EXPECT_NE(slurpFile(TraceFile2).find("\"traceEvents\""), std::string::npos);

  fs::remove(TraceFile);
  fs::remove(TraceFile2);
}

TEST(CliTest, TraceToUnwritablePathFailsLoudlyBeforeAnalyzing) {
  // An unwritable trace path must be a loud up-front exit 1 — never a
  // full analysis whose recording is then silently dropped.
  CmdResult R = runCli("analyze --trace /nonexistent-dir/trace.json " +
                       goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 1) << R.Out;
  EXPECT_NE(R.Out.find("cannot write trace file"), std::string::npos)
      << R.Out;
  // Fail-fast: no report was printed.
  EXPECT_EQ(R.Out.find("struct"), std::string::npos) << R.Out;
}

TEST(CliTest, ProfilePrintsTableAndJsonStats) {
  // Text mode: the per-SCC attribution table goes to stderr; the report
  // on stdout stays byte-identical to an unprofiled run.
  CmdResult Plain = runCli("analyze " + goldenAsm("list_traverse.asm"));
  std::string Cmd = std::string(RETYPD_CLI_PATH) + " analyze --profile " +
                    goldenAsm("list_traverse.asm") + " 2>/dev/null";
  CmdResult StdoutOnly;
  {
    FILE *P = popen(Cmd.c_str(), "r");
    ASSERT_NE(P, nullptr);
    char Buf[4096];
    size_t N;
    while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
      StdoutOnly.Out.append(Buf, N);
    int Status = pclose(P);
    StdoutOnly.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }
  EXPECT_EQ(StdoutOnly.Exit, 0);
  EXPECT_EQ(StdoutOnly.Out, Plain.Out) << "--profile changed stdout";

  CmdResult R = runCli("analyze --profile " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("profile: top"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("attributed"), std::string::npos) << R.Out;

  // JSON mode: --profile implies stats and adds the "profile" member with
  // per-SCC attribution fields.
  R = runCli("analyze --profile --format=json " +
             goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("\"stats\": {"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("\"profile\": ["), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("\"join_ops\""), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("\"total_secs\""), std::string::npos) << R.Out;

  // --profile=N caps the table; a bogus N exits 2.
  R = runCli("analyze --profile=1 " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("profile: top 1 of"), std::string::npos) << R.Out;
  R = runCli("analyze --profile=banana " + goldenAsm("list_traverse.asm"));
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("--profile expects a non-negative row count"),
            std::string::npos)
      << R.Out;
}

TEST(CliTest, CacheInspectAttributesBackends) {
  // A store fed by both backends is attributed per backend in both the
  // text and JSON renderings of `cache inspect`.
  fs::path Dir = fs::temp_directory_path() / "cli_backend_store";
  fs::remove_all(Dir);
  CmdResult R = runCli("analyze --store " + Dir.string() + " " +
                       goldenAsm("list_traverse.asm"));
  ASSERT_EQ(R.Exit, 0) << R.Out;
  R = runCli("analyze --backend=binsub --store " + Dir.string() + " " +
             goldenAsm("list_traverse.asm"));
  ASSERT_EQ(R.Exit, 0) << R.Out;

  R = runCli("cache inspect " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("scheme[retypd]="), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("scheme[binsub]="), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("sketches[binsub]="), std::string::npos) << R.Out;

  R = runCli("cache inspect --format=json " + Dir.string());
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("\"live_kinds\""), std::string::npos) << R.Out;
  fs::remove_all(Dir);
}
