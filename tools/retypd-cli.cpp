//===- retypd-cli.cpp - Command-line driver -----------------------------------===//
//
// The command-line face of the library, built on the long-lived
// AnalysisSession API:
//
//   retypd-cli analyze prog.asm            infer and print a C header
//   retypd-cli analyze --format=json p.asm structured JSON report
//   retypd-cli reanalyze base.asm new.asm  analyze base, then incrementally
//                                          re-analyze the edited module;
//                                          output is byte-identical to
//                                          `analyze new.asm`
//   retypd-cli cache inspect PATH          summary-cache file or artifact
//                                          store directory info
//   retypd-cli cache prune PATH --max-bytes N   drop largest entries
//   retypd-cli cache compact DIR           fold an artifact store's dead
//                                          records into a fresh segment
//   retypd-cli cache verify DIR            offline fsck of an artifact
//                                          store: manifest cross-refs,
//                                          per-record CRC + payload
//                                          validation, pool integrity,
//                                          liveness reconciliation
//   retypd-cli help [command]
//
// `retypd-cli [options] prog.asm` (no subcommand) still works and means
// `analyze`. Unknown options are rejected with a "did you mean" hint and
// exit code 2.
//
// analyze/reanalyze options:
//   --schemes --sketches         verbose per-function output
//   --stats                      append per-phase timing + incremental
//                                counters (a trailing comment in text
//                                mode, a "stats" member in JSON)
//   --jobs N                     solve SCC waves on N threads (0 = one
//                                per hardware core); output is
//                                byte-identical for every N
//   --summary-cache FILE         persist the content-addressed scheme
//                                cache across runs (whole-file rewrite;
//                                the legacy import/export path)
//   --store DIR                  share a durable multi-process artifact
//                                store: appends are journaled, reads are
//                                zero-copy out of mmapped segments
//   --format=text|json           report rendering
//   --backend=retypd|binsub      solver backend: the paper's saturation
//                                pipeline (default) or BinSub-style
//                                algebraic subtyping; artifacts are
//                                backend-keyed in caches and stores
//   --verify=off|phase|full      formation-rule checks at phase
//                                boundaries (phase) and additionally on
//                                cache/store-replayed artifacts (full);
//                                violations go to stderr, exit 2
//   --trace FILE                 write a Chrome trace-event JSON recording
//                                of the run (load in Perfetto); diagnostic
//                                output, excluded from the determinism
//                                contract
//   --profile[=N]                print the top-N hottest SCCs (per-SCC
//                                generate/simplify/solve/refine seconds,
//                                constraint counts, sketch-join ops, cache
//                                hit kinds) to stderr; with --format=json
//                                also a "profile" member in "stats"
// analyze only:
//   --strip                      stripped-binary round trip first
//   --engine=retypd|unify|interval   baseline engines (text only)
//
// Input is the textual assembly of mir/AsmParser.h (see examples/data/).
//
//===----------------------------------------------------------------------===//

#include "baseline/Baselines.h"
#include "core/SchemeCodec.h"
#include "frontend/ReportJson.h"
#include "frontend/ReportPrinter.h"
#include "frontend/Session.h"
#include "loader/BinaryImage.h"
#include "mir/AsmParser.h"
#include "mir/Verifier.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace retypd;

namespace {

//===----------------------------------------------------------------------===//
// Option-parsing helpers
//===----------------------------------------------------------------------===//

/// Levenshtein distance, for "did you mean" hints.
size_t editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diag = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Next = std::min({Row[J] + 1, Row[J - 1] + 1,
                              Diag + (A[I - 1] != B[J - 1] ? 1 : 0)});
      Diag = Row[J];
      Row[J] = Next;
    }
  }
  return Row[B.size()];
}

/// The closest candidate within distance 3, or "".
std::string suggestFor(const std::string &Arg,
                       const std::vector<std::string> &Candidates) {
  // Compare the flag name only (strip a "=value" suffix).
  std::string Name = Arg.substr(0, Arg.find('='));
  std::string Best;
  size_t BestDist = 4;
  for (const std::string &C : Candidates) {
    size_t D = editDistance(Name, C.substr(0, C.find('=')));
    if (D < BestDist) {
      BestDist = D;
      Best = C;
    }
  }
  return Best;
}

/// Prints the unknown-option error (with a hint when one is close) and
/// returns the usage exit code.
int unknownOption(const char *Command, const std::string &Arg,
                  const std::vector<std::string> &Candidates) {
  std::string Hint = suggestFor(Arg, Candidates);
  if (!Hint.empty())
    std::fprintf(stderr,
                 "error: unknown option '%s' for '%s' — did you mean '%s'?\n",
                 Arg.c_str(), Command, Hint.c_str());
  else
    std::fprintf(stderr, "error: unknown option '%s' for '%s'\n", Arg.c_str(),
                 Command);
  std::fprintf(stderr, "run 'retypd-cli help' for usage\n");
  return 2;
}

int usage(FILE *Out = stderr) {
  std::fprintf(
      Out,
      "usage: retypd-cli <command> [options] <args>\n"
      "\n"
      "commands:\n"
      "  analyze   [options] prog.asm           infer types, print a report\n"
      "  reanalyze [options] base.asm new.asm   incremental re-analysis of an\n"
      "                                         edited module (same output as\n"
      "                                         'analyze new.asm')\n"
      "  cache inspect PATH                     summary-cache file or store\n"
      "                                         directory info\n"
      "  cache prune PATH --max-bytes N         shrink a cache file / store\n"
      "  cache compact DIR                      reclaim a store's dead bytes\n"
      "  cache verify DIR                       offline fsck of a store:\n"
      "                                         every violation named by\n"
      "                                         file, offset and key\n"
      "  help [command]                         this text\n"
      "\n"
      "analyze/reanalyze options:\n"
      "  --schemes --sketches --stats --jobs N --summary-cache FILE\n"
      "  --store DIR --format=text|json --verify=off|phase|full\n"
      "  --backend=retypd|binsub --trace FILE --profile[=N]\n"
      "analyze only: --strip --engine=retypd|unify|interval\n"
      "\n"
      "'retypd-cli [options] prog.asm' without a command means 'analyze'.\n");
  return 2;
}

/// Parses a --jobs value: a plain decimal in [0, 1024] (0 = one thread
/// per hardware core). Rejects signs, trailing junk, and overflow.
bool parseJobs(const char *Text, unsigned &Jobs) {
  errno = 0;
  char *End = nullptr;
  unsigned long V = std::strtoul(Text, &End, 10);
  if (End == Text || *End != '\0' || Text[0] == '-' || Text[0] == '+' ||
      errno == ERANGE || V > 1024) {
    std::fprintf(stderr,
                 "error: --jobs expects a number in [0, 1024], got '%s'\n",
                 Text);
    return false;
  }
  Jobs = static_cast<unsigned>(V);
  return true;
}

//===----------------------------------------------------------------------===//
// analyze / reanalyze
//===----------------------------------------------------------------------===//

struct AnalyzeOpts {
  bool Schemes = false, Sketches = false, Strip = false, Stats = false;
  bool Profile = false;
  unsigned ProfileTop = 10; ///< --profile=N; 0 = every SCC
  unsigned Jobs = 1;
  VerifyLevel Verify = VerifyLevel::Off;
  BackendKind Backend = BackendKind::Retypd;
  std::string Engine = "retypd";
  std::string CachePath;
  std::string StoreDir;
  std::string TracePath;
  std::string Format = "text";
  std::vector<std::string> Paths;
};

const std::vector<std::string> kAnalyzeFlags = {
    "--schemes", "--sketches",      "--strip",   "--stats",  "--jobs",
    "--summary-cache", "--store", "--engine=", "--format=", "--verify=",
    "--backend=", "--trace", "--profile"};
const std::vector<std::string> kReanalyzeFlags = {
    "--schemes", "--sketches", "--stats", "--jobs",
    "--summary-cache", "--store", "--format=", "--verify=", "--backend=",
    "--trace", "--profile"};

/// Parses analyze/reanalyze arguments from argv[Start..). Returns 0 on
/// success, 2 on a usage error (already reported).
int parseAnalyzeArgs(int argc, char **argv, int Start, const char *Command,
                     bool AllowEngine, AnalyzeOpts &O) {
  for (int I = Start; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--schemes")
      O.Schemes = true;
    else if (Arg == "--sketches")
      O.Sketches = true;
    else if (Arg == "--strip" && AllowEngine)
      O.Strip = true;
    else if (Arg == "--stats")
      O.Stats = true;
    else if (Arg == "--jobs" || Arg == "--summary-cache" ||
             Arg == "--store" || Arg == "--trace") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: option '%s' requires a value\n",
                     Arg.c_str());
        return 2;
      }
      if (Arg == "--jobs") {
        if (!parseJobs(argv[++I], O.Jobs))
          return 2;
      } else if (Arg == "--summary-cache")
        O.CachePath = argv[++I];
      else if (Arg == "--trace")
        O.TracePath = argv[++I];
      else
        O.StoreDir = argv[++I];
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseJobs(Arg.c_str() + 7, O.Jobs))
        return 2;
    } else if (Arg.rfind("--summary-cache=", 0) == 0)
      O.CachePath = Arg.substr(16);
    else if (Arg.rfind("--store=", 0) == 0)
      O.StoreDir = Arg.substr(8);
    else if (Arg.rfind("--trace=", 0) == 0)
      O.TracePath = Arg.substr(8);
    else if (Arg == "--profile")
      O.Profile = true;
    else if (Arg.rfind("--profile=", 0) == 0) {
      errno = 0;
      char *End = nullptr;
      unsigned long V = std::strtoul(Arg.c_str() + 10, &End, 10);
      if (End == Arg.c_str() + 10 || *End != '\0' || Arg[10] == '-' ||
          Arg[10] == '+' || errno == ERANGE || V > 1000000) {
        std::fprintf(stderr,
                     "error: --profile expects a non-negative row count, "
                     "got '%s'\n",
                     Arg.c_str() + 10);
        return 2;
      }
      O.Profile = true;
      O.ProfileTop = static_cast<unsigned>(V);
    }
    else if (Arg.rfind("--engine=", 0) == 0 && AllowEngine) {
      O.Engine = Arg.substr(9);
      if (O.Engine != "retypd" && O.Engine != "unify" &&
          O.Engine != "interval") {
        std::fprintf(stderr,
                     "error: --engine expects retypd, unify or interval, "
                     "got '%s'\n",
                     O.Engine.c_str());
        return 2;
      }
    } else if (Arg.rfind("--format=", 0) == 0) {
      O.Format = Arg.substr(9);
      if (O.Format != "text" && O.Format != "json") {
        std::fprintf(stderr,
                     "error: --format expects text or json, got '%s'\n",
                     O.Format.c_str());
        return 2;
      }
    } else if (Arg.rfind("--verify=", 0) == 0) {
      auto Level = parseVerifyLevel(Arg.substr(9));
      if (!Level) {
        std::fprintf(stderr,
                     "error: --verify expects off, phase or full, got '%s'\n",
                     Arg.c_str() + 9);
        return 2;
      }
      O.Verify = *Level;
    } else if (Arg.rfind("--backend=", 0) == 0) {
      std::string Value = Arg.substr(10);
      auto Kind = parseBackendKind(Value);
      if (!Kind) {
        // Unknown backends must fail loudly (exit 2), never silently run
        // the default — the two backends produce different artifacts.
        std::string Hint = suggestFor(
            Value, std::vector<std::string>(std::begin(kBackendNames),
                                            std::end(kBackendNames)));
        if (!Hint.empty())
          std::fprintf(stderr,
                       "error: --backend expects retypd or binsub, got "
                       "'%s' — did you mean '%s'?\n",
                       Value.c_str(), Hint.c_str());
        else
          std::fprintf(stderr,
                       "error: --backend expects retypd or binsub, got "
                       "'%s'\n",
                       Value.c_str());
        return 2;
      }
      O.Backend = *Kind;
    } else if (!Arg.empty() && Arg[0] == '-') {
      // Flags gated off for this command get a precise message, not a
      // self-referential "did you mean".
      if (!AllowEngine &&
          (Arg == "--strip" || Arg.rfind("--engine=", 0) == 0)) {
        std::fprintf(stderr, "error: option '%s' is not valid for '%s'\n",
                     Arg.c_str(), Command);
        return 2;
      }
      return unknownOption(Command, Arg,
                           AllowEngine ? kAnalyzeFlags : kReanalyzeFlags);
    } else
      O.Paths.push_back(Arg);
  }
  return 0;
}

/// Reads, parses and structurally verifies one assembly module; reports
/// errors itself. On failure \p Rc is set to the exit code: 1 when the
/// file cannot be read, 2 when the input is malformed (parse error or
/// module-verifier diagnostics — all of them, not just the first).
std::optional<Module> loadAsm(const std::string &Path, int &Rc) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    Rc = 1;
    return std::nullopt;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  AsmParser Parser;
  auto M = Parser.parse(Buf.str());
  if (!M) {
    std::fprintf(stderr, "%s: parse error: %s\n", Path.c_str(),
                 Parser.error().c_str());
    Rc = 2;
    return std::nullopt;
  }
  // Nothing malformed may reach constraint generation undiagnosed: check
  // the structural well-formedness rules and report every violation with
  // a file:line position where the parser's line table has one.
  ModuleVerifyResult V = verifyModule(*M);
  if (!V.ok()) {
    std::string Text = renderModuleDiags(*M, V, Path, &Parser.lineTable());
    std::fwrite(Text.data(), 1, Text.size(), stderr);
    std::fprintf(stderr, "%s: %zu malformed-module error%s\n", Path.c_str(),
                 V.Errors.size(), V.Errors.size() == 1 ? "" : "s");
    Rc = 2;
    return std::nullopt;
  }
  if (auto Main = M->findFunction("main"))
    M->EntryFunc = *Main;
  return M;
}

/// --trace / --profile lifecycle around the analyze() call(s). The trace
/// file is opened BEFORE the run: an unwritable path must fail loudly up
/// front (exit 1), never record a whole run and then drop it silently.
struct TraceRun {
  FILE *Out = nullptr;
  bool Active = false;
  std::chrono::steady_clock::time_point Start;
  double WallSecs = 0;
  std::string ProfileJson; ///< rendered rows for the stats "profile" member
};

int beginTrace(const AnalyzeOpts &O, TraceRun &T) {
  if (O.TracePath.empty() && !O.Profile)
    return 0;
  if (!O.TracePath.empty()) {
    T.Out = std::fopen(O.TracePath.c_str(), "w");
    if (!T.Out) {
      std::fprintf(stderr, "error: cannot write trace file %s: %s\n",
                   O.TracePath.c_str(), std::strerror(errno));
      return 1;
    }
  }
  trace::start();
  T.Active = true;
  T.Start = std::chrono::steady_clock::now();
  return 0;
}

/// Stops the recording, writes the Chrome JSON (when --trace was given),
/// and renders the per-SCC profile (when --profile was given). Returns 1
/// if the trace file could not be written out.
int endTrace(const AnalyzeOpts &O, TraceRun &T) {
  if (!T.Active)
    return 0;
  T.WallSecs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - T.Start)
                   .count();
  trace::stop();
  std::vector<trace::Event> Events = trace::collect();
  int Rc = 0;
  if (T.Out) {
    std::string Json = trace::writeChromeJson(Events);
    size_t Written = std::fwrite(Json.data(), 1, Json.size(), T.Out);
    if (Written != Json.size() || std::fclose(T.Out) != 0) {
      std::fprintf(stderr, "error: cannot write trace file %s: %s\n",
                   O.TracePath.c_str(), std::strerror(errno));
      Rc = 1;
    }
    T.Out = nullptr;
  }
  if (O.Profile) {
    std::vector<trace::ProfileRow> Rows = trace::buildProfile(Events);
    std::string Table =
        trace::renderProfileTable(Rows, O.ProfileTop, T.WallSecs);
    std::fwrite(Table.data(), 1, Table.size(), stderr);
    T.ProfileJson = trace::profileJson(Rows, O.ProfileTop);
  }
  return Rc;
}

/// Renders the session's last report in the requested format and appends
/// stats when asked.
void printReport(AnalysisSession &S, const AnalyzeOpts &O,
                 const std::string &ProfileJson = std::string()) {
  if (O.Format == "json") {
    ReportJsonOptions JOpts;
    JOpts.Schemes = O.Schemes;
    JOpts.Sketches = O.Sketches;
    // --profile implies stats in JSON mode: the profile rows live inside
    // the stats object.
    JOpts.Stats = O.Stats || O.Profile;
    JOpts.ProfileJson = ProfileJson;
    std::string Text =
        renderReportJson(*S.report(), S.module(), S.lattice(), JOpts);
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return;
  }
  ReportPrintOptions PrintOpts;
  PrintOpts.Schemes = O.Schemes;
  PrintOpts.Sketches = O.Sketches;
  std::string Text =
      renderReport(*S.report(), S.module(), S.lattice(), PrintOpts);
  std::fwrite(Text.data(), 1, Text.size(), stdout);
  if (O.Stats) {
    const PipelineStats &St = S.report()->Stats;
    std::printf("/* stats: backend=%s jobs=%u sccs=%zu waves=%zu widest=%zu "
                "gen=%.3fs simplify=%.3fs solve=%.3fs convert=%.3fs "
                "cache_hits=%llu cache_misses=%llu */\n",
                St.Backend.c_str(), St.JobsUsed, St.SccCount, St.WaveCount,
                St.WidestWave, St.GenerateSecs, St.SimplifySecs, St.SolveSecs,
                St.ConvertSecs, static_cast<unsigned long long>(St.CacheHits),
                static_cast<unsigned long long>(St.CacheMisses));
    std::printf("/* incremental: %s dirty=%zu sccs_simplified=%zu "
                "sccs_reused=%zu sccs_solved=%zu refined_only=%zu "
                "solve_reused=%zu */\n",
                St.IncrementalRun ? "yes" : "no", St.FunctionsDirty,
                St.SccsSimplified, St.SccsReused, St.SccsSolved,
                St.SccsRefinedOnly, St.SccsSolveReused);
    std::printf("/* store: hits=%llu appends=%llu pool_bind_hits=%llu */\n",
                static_cast<unsigned long long>(St.StoreHits),
                static_cast<unsigned long long>(St.StoreAppends),
                static_cast<unsigned long long>(St.PoolBindHits));
    std::printf("/* scheduler: scheduled=%llu batches=%llu "
                "max_ready_queue=%llu commit_stalls=%llu */\n",
                static_cast<unsigned long long>(St.SccsScheduled),
                static_cast<unsigned long long>(St.BatchesFormed),
                static_cast<unsigned long long>(St.MaxReadyQueue),
                static_cast<unsigned long long>(St.CommitStalls));
  }
}

/// The classic baselines keep their minimal text-only output.
int runBaseline(Module &M, const std::string &Engine) {
  Lattice Lat = makeDefaultLattice();
  BaselineResult R;
  if (Engine == "unify") {
    UnificationInference U(Lat);
    R = U.run(M);
  } else {
    IntervalInference T(Lat);
    R = T.run(M);
  }
  for (const auto &[F, BF] : R.Funcs) {
    std::string Params;
    for (size_t K = 0; K < BF.Params.size(); ++K) {
      if (K)
        Params += ", ";
      Params += R.Pool.declare(BF.Params[K].Type, "");
    }
    std::printf("%s %s(%s);\n",
                BF.HasRet ? R.Pool.declare(BF.Ret.Type, "").c_str() : "void",
                M.Funcs[F].Name.c_str(),
                Params.empty() ? "void" : Params.c_str());
  }
  return 0;
}

/// Session configuration for the CLI options (the session itself is
/// constructed in place — it owns a mutex and cannot move). \p Incremental
/// is true only for reanalyze, which actually re-analyzes; one-shot
/// analyze skips the snapshot bookkeeping.
SessionOptions sessionOptsFor(const AnalyzeOpts &O, bool Incremental) {
  SessionOptions SO;
  SO.Jobs = O.Jobs;
  SO.UseSummaryCache = !O.CachePath.empty() || !O.StoreDir.empty();
  SO.StoreDir = O.StoreDir;
  SO.Verify = O.Verify;
  SO.Backend = O.Backend;
  SO.KeepHistory = Incremental;
  return SO;
}

/// Prints formation-rule violations found under --verify and returns the
/// exit code: 2 when there are any, 0 otherwise. The report itself has
/// already been printed — a verifier finding means the pipeline produced
/// a malformed artifact, and the output cannot be trusted.
int checkVerify(AnalysisSession &S, const AnalyzeOpts &O) {
  const std::vector<std::string> &Errs = S.report()->VerifyErrors;
  if (Errs.empty())
    return 0;
  for (const std::string &E : Errs)
    std::fprintf(stderr, "verify: error: %s\n", E.c_str());
  std::fprintf(stderr, "verify: %zu formation-rule violation%s (--verify=%s)\n",
               Errs.size(), Errs.size() == 1 ? "" : "s",
               verifyLevelName(O.Verify));
  return 2;
}

/// A requested store that failed to open is loud and fatal: silently
/// running cold would defeat the point of sharing one.
int checkStore(AnalysisSession &S, const AnalyzeOpts &O) {
  if (!O.StoreDir.empty() && !S.storeError().empty()) {
    std::fprintf(stderr, "error: cannot open artifact store %s: %s\n",
                 O.StoreDir.c_str(), S.storeError().c_str());
    return 1;
  }
  return 0;
}

/// A failed end-of-run flush is a warning: the report is complete.
void warnStoreFlush(AnalysisSession &S, const AnalyzeOpts &O) {
  if (!O.StoreDir.empty() && !S.storeError().empty())
    std::fprintf(stderr, "warning: cannot flush artifact store %s: %s\n",
                 O.StoreDir.c_str(), S.storeError().c_str());
}

void loadCacheIfAsked(AnalysisSession &S, const AnalyzeOpts &O) {
  if (!O.CachePath.empty())
    S.summaryCache().load(O.CachePath); // a missing file is just a cold cache
}

int saveCacheIfAsked(AnalysisSession &S, const AnalyzeOpts &O) {
  if (!O.CachePath.empty() && !S.summaryCache().save(O.CachePath))
    std::fprintf(stderr, "warning: cannot write summary cache %s\n",
                 O.CachePath.c_str());
  return 0;
}

int cmdAnalyze(int argc, char **argv, int Start, const char *Command) {
  AnalyzeOpts O;
  if (int Rc = parseAnalyzeArgs(argc, argv, Start, Command, true, O))
    return Rc;
  if (O.Paths.size() != 1) {
    std::fprintf(stderr, "error: 'analyze' expects exactly one input, got %zu\n",
                 O.Paths.size());
    return usage();
  }

  int LoadRc = 1;
  auto M = loadAsm(O.Paths[0], LoadRc);
  if (!M)
    return LoadRc;

  if (O.Strip) {
    EncodedImage Img = encodeModule(*M);
    DecodeReport Rep;
    auto Recovered = decodeImage(Img.Bytes, Rep);
    if (!Recovered) {
      std::fprintf(stderr, "decode error: %s\n", Rep.Error.c_str());
      return 1;
    }
    std::printf("/* stripped round trip: %u functions rediscovered, "
                "%u imports, %u damaged instructions */\n",
                Rep.FunctionsDiscovered, Rep.ImportsResolved,
                Rep.BadInstructions);
    *M = std::move(*Recovered);
  }

  if (O.Engine != "retypd") {
    if (O.Format == "json") {
      std::fprintf(stderr,
                   "error: --format=json is not supported with "
                   "--engine=%s (baselines emit text only)\n",
                   O.Engine.c_str());
      return 2;
    }
    return runBaseline(*M, O.Engine);
  }

  AnalysisSession S(makeDefaultLattice(), sessionOptsFor(O, false));
  if (int Rc = checkStore(S, O))
    return Rc;
  TraceRun T;
  if (int Rc = beginTrace(O, T))
    return Rc;
  loadCacheIfAsked(S, O);
  S.loadModule(std::move(*M));
  S.analyze();
  warnStoreFlush(S, O);
  saveCacheIfAsked(S, O);
  if (int Rc = endTrace(O, T))
    return Rc;
  printReport(S, O, T.ProfileJson);
  return checkVerify(S, O);
}

int cmdReanalyze(int argc, char **argv, int Start) {
  AnalyzeOpts O;
  if (int Rc = parseAnalyzeArgs(argc, argv, Start, "reanalyze", false, O))
    return Rc;
  if (O.Paths.size() != 2) {
    std::fprintf(stderr,
                 "error: 'reanalyze' expects base.asm and edited.asm, "
                 "got %zu inputs\n",
                 O.Paths.size());
    return usage();
  }

  int LoadRc = 1;
  auto Base = loadAsm(O.Paths[0], LoadRc);
  if (!Base)
    return LoadRc;
  auto Edited = loadAsm(O.Paths[1], LoadRc);
  if (!Edited)
    return LoadRc;

  AnalysisSession S(makeDefaultLattice(), sessionOptsFor(O, true));
  if (int Rc = checkStore(S, O))
    return Rc;
  // One recording spans both runs: the trace shows the cold run followed
  // by the warm one, which is exactly the incremental-reuse picture.
  TraceRun T;
  if (int Rc = beginTrace(O, T))
    return Rc;
  loadCacheIfAsked(S, O);
  S.loadModule(std::move(*Base));
  S.analyze();
  S.updateModule(std::move(*Edited));
  S.analyze();
  warnStoreFlush(S, O);
  saveCacheIfAsked(S, O);
  if (int Rc = endTrace(O, T))
    return Rc;
  printReport(S, O, T.ProfileJson);
  return checkVerify(S, O);
}

//===----------------------------------------------------------------------===//
// cache
//===----------------------------------------------------------------------===//

/// `cache inspect` on an artifact-store directory: per-segment record
/// counts, live/dead bytes, and the MANIFEST generation. Stale or newer
/// stores get the same actionable message as stale cache files.
int storeInspect(const std::string &Dir, const std::string &Format) {
  // An absent or empty directory is the pre-first-analyze state, not an
  // error: report a clean zero-state and leave the directory untouched.
  bool Empty = Store::isUninitializedDir(Dir);
  StoreInfo Info;
  if (Empty)
    Info.Ok = true;
  else
    Info = Store::inspect(Dir, kSummaryCacheSchemaVersion);
  // Record kinds are the payloads' leading tag bytes, which carry both
  // the payload kind and the producing solver backend — this is what
  // makes backend-keyed artifacts auditable from the outside.
  auto kindLabel = [](uint8_t Kind) -> std::string {
    const char *Name = payloadKindName(Kind);
    if (!Name) {
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "kind_0x%02x", Kind);
      return Buf;
    }
    std::string Label = Name;
    if (std::string(Name) != "gen") {
      Label += '[';
      Label += backendName(payloadBackend(Kind));
      Label += ']';
    }
    return Label;
  };
  if (Format == "json") {
    std::string Segs = "[";
    for (size_t I = 0; I < Info.Segments.size(); ++I) {
      const StoreSegmentInfo &S = Info.Segments[I];
      if (I)
        Segs += ", ";
      Segs += "{\"name\": " + std::string("\"") + jsonEscape(S.Name) +
              "\", \"records\": " + std::to_string(S.Records) +
              ", \"live_records\": " + std::to_string(S.LiveRecords) +
              ", \"live_bytes\": " + std::to_string(S.LiveBytes) +
              ", \"dead_bytes\": " + std::to_string(S.DeadBytes) +
              ", \"corrupt_records\": " + std::to_string(S.CorruptRecords) +
              ", \"file_bytes\": " + std::to_string(S.FileBytes) + "}";
    }
    Segs += "]";
    std::string Kinds = "{";
    bool FirstKind = true;
    for (const auto &[Kind, Count] : Info.LiveKindCounts) {
      if (!FirstKind)
        Kinds += ", ";
      FirstKind = false;
      Kinds += "\"" + jsonEscape(kindLabel(Kind)) +
               "\": " + std::to_string(Count);
    }
    Kinds += "}";
    std::printf("{\"store\": \"%s\", \"ok\": %s, \"empty\": %s, "
                "\"stale\": %s, "
                "\"newer_than_binary\": %s, \"format_version\": %u, "
                "\"schema_version\": %u, \"generation\": %llu, "
                "\"keys\": %zu, \"live_bytes\": %zu, \"dead_bytes\": %zu, "
                "\"pool_names\": %zu, \"pool_bytes\": %zu, "
                "\"live_kinds\": %s, "
                "\"segments\": %s, \"error\": \"%s\"}\n",
                jsonEscape(Dir).c_str(), Info.Ok ? "true" : "false",
                Empty ? "true" : "false",
                Info.Stale ? "true" : "false",
                Info.Newer ? "true" : "false", Info.FormatVersion,
                Info.SchemaVersion,
                static_cast<unsigned long long>(Info.Generation),
                Info.KeyCount, Info.LiveBytes, Info.DeadBytes,
                Info.PoolNames, Info.PoolBytes, Kinds.c_str(), Segs.c_str(),
                jsonEscape(Info.Error).c_str());
    return Info.Ok ? 0 : 1;
  }
  std::printf("store: %s\n", Dir.c_str());
  if (!Info.Ok) {
    std::printf("header: %s\n", Info.Error.c_str());
    return 1;
  }
  if (Empty)
    std::printf("header: empty store (not yet initialized)\n");
  else
    std::printf("header: ok (v%u schema %u)\n", Info.FormatVersion,
                Info.SchemaVersion);
  std::printf("generation: %llu\n",
              static_cast<unsigned long long>(Info.Generation));
  std::printf("keys: %zu\nlive bytes: %zu\ndead bytes: %zu\n", Info.KeyCount,
              Info.LiveBytes, Info.DeadBytes);
  if (Info.PoolNames || Info.PoolBytes)
    std::printf("pool: %zu names, %zu bytes\n", Info.PoolNames,
                Info.PoolBytes);
  if (!Info.LiveKindCounts.empty()) {
    std::printf("live records:");
    for (const auto &[Kind, Count] : Info.LiveKindCounts)
      std::printf(" %s=%zu", kindLabel(Kind).c_str(), Count);
    std::printf("\n");
  }
  for (const StoreSegmentInfo &S : Info.Segments)
    std::printf("segment %s: records %zu live %zu live_bytes %zu "
                "dead_bytes %zu corrupt %zu file_bytes %zu\n",
                S.Name.c_str(), S.Records, S.LiveRecords, S.LiveBytes,
                S.DeadBytes, S.CorruptRecords, S.FileBytes);
  return 0;
}

/// Opens a store for a mutating cache verb, with the stale/newer
/// direction-aware message on failure. Refuses directories with no
/// MANIFEST outright: Store::open would initialize one, and a compact
/// or prune of a mistyped path must not pollute it with an empty store.
std::unique_ptr<Store> openStoreForVerb(const std::string &Dir) {
  if (!std::filesystem::exists(std::filesystem::path(Dir) / "MANIFEST")) {
    std::fprintf(stderr,
                 "error: %s has no MANIFEST — not an artifact store\n",
                 Dir.c_str());
    return nullptr;
  }
  StoreOptions SO;
  SO.SchemaVersion = kSummaryCacheSchemaVersion;
  std::string Err;
  auto S = Store::open(Dir, SO, &Err);
  if (!S)
    std::fprintf(stderr, "error: cannot open %s: %s\n", Dir.c_str(),
                 Err.c_str());
  return S;
}

int storeCompact(const std::string &Dir, const std::string &Format) {
  if (Store::isUninitializedDir(Dir)) {
    if (Format == "json")
      std::printf("{\"store\": \"%s\", \"empty\": true, \"generation\": 0, "
                  "\"live_records\": 0, \"live_bytes\": 0, "
                  "\"dropped_records\": 0, \"reclaimed_bytes\": 0}\n",
                  jsonEscape(Dir).c_str());
    else
      std::printf("empty store (not yet initialized): nothing to compact\n");
    return 0;
  }
  auto S = openStoreForVerb(Dir);
  if (!S)
    return 1;
  std::string Err;
  auto R = S->compact(&Err);
  if (!R) {
    std::fprintf(stderr, "error: cannot compact %s: %s\n", Dir.c_str(),
                 Err.c_str());
    return 1;
  }
  if (Format == "json")
    std::printf("{\"store\": \"%s\", \"generation\": %llu, "
                "\"live_records\": %zu, \"live_bytes\": %zu, "
                "\"dropped_records\": %zu, \"reclaimed_bytes\": %zu}\n",
                jsonEscape(Dir).c_str(),
                static_cast<unsigned long long>(R->Generation),
                R->LiveRecords, R->LiveBytes, R->DroppedRecords,
                R->ReclaimedBytes);
  else
    std::printf("compacted to generation %llu: %zu live records "
                "(%zu payload bytes), dropped %zu, reclaimed %zu bytes\n",
                static_cast<unsigned long long>(R->Generation),
                R->LiveRecords, R->LiveBytes, R->DroppedRecords,
                R->ReclaimedBytes);
  return 0;
}

int storePrune(const std::string &Dir, size_t MaxBytes,
               const std::string &Format) {
  if (Store::isUninitializedDir(Dir)) {
    if (Format == "json")
      std::printf("{\"store\": \"%s\", \"empty\": true, \"pruned\": 0, "
                  "\"before\": 0, \"remaining\": 0, \"payload_bytes\": 0}\n",
                  jsonEscape(Dir).c_str());
    else
      std::printf("empty store (not yet initialized): nothing to prune\n");
    return 0;
  }
  auto S = openStoreForVerb(Dir);
  if (!S)
    return 1;
  // Same victim policy as SummaryCache::pruneToBytes: largest payloads
  // first, key order on ties, until the payload total fits.
  auto Entries = S->liveEntries();
  size_t Before = Entries.size(), Total = 0;
  for (const auto &E : Entries)
    Total += E.second;
  std::sort(Entries.begin(), Entries.end(),
            [](const auto &A, const auto &B) {
              if (A.second != B.second)
                return A.second > B.second;
              return A.first < B.first;
            });
  std::unordered_map<Hash128, bool, Hash128Hasher> Drop;
  for (const auto &E : Entries) {
    if (Total <= MaxBytes)
      break;
    Total -= E.second;
    Drop[E.first] = true;
  }
  std::string Err;
  auto R = S->compact(
      [&](const Hash128 &K, size_t) { return !Drop.count(K); }, &Err);
  if (!R) {
    std::fprintf(stderr, "error: cannot prune %s: %s\n", Dir.c_str(),
                 Err.c_str());
    return 1;
  }
  if (Format == "json")
    std::printf("{\"store\": \"%s\", \"pruned\": %zu, \"before\": %zu, "
                "\"remaining\": %zu, \"payload_bytes\": %zu}\n",
                jsonEscape(Dir).c_str(), Drop.size(), Before,
                R->LiveRecords, R->LiveBytes);
  else
    std::printf("pruned %zu of %zu entries; %zu remain (%zu payload "
                "bytes)\n",
                Drop.size(), Before, R->LiveRecords, R->LiveBytes);
  return 0;
}

/// `cache verify`: offline fsck over an artifact store. Read-only; every
/// violation is localized to its file, byte offset and (when the framing
/// was readable) record key. Exit 0 = clean, 1 = violations or an
/// unscannable store.
int storeVerify(const std::string &Dir, const std::string &Format) {
  bool Empty = Store::isUninitializedDir(Dir);
  StoreFsckReport Rep;
  if (Empty)
    Rep.Ok = true; // the pre-first-analyze state: vacuously clean
  else
    Rep = Store::fsck(Dir, kSummaryCacheSchemaVersion, validatePayload);
  if (Format == "json") {
    std::string Viols = "[";
    for (size_t I = 0; I < Rep.Violations.size(); ++I) {
      const StoreFsckViolation &V = Rep.Violations[I];
      if (I)
        Viols += ", ";
      Viols += "{\"file\": \"" + jsonEscape(V.File) +
               "\", \"offset\": " + std::to_string(V.Offset);
      if (V.HasKey) {
        char KeyBuf[36];
        std::snprintf(KeyBuf, sizeof(KeyBuf), "%016llx%016llx",
                      static_cast<unsigned long long>(V.Key.Hi),
                      static_cast<unsigned long long>(V.Key.Lo));
        Viols += std::string(", \"key\": \"") + KeyBuf + "\"";
      }
      Viols += ", \"message\": \"" + jsonEscape(V.Message) + "\"}";
    }
    Viols += "]";
    std::printf("{\"store\": \"%s\", \"ok\": %s, \"empty\": %s, "
                "\"clean\": %s, \"generation\": %llu, "
                "\"segments_scanned\": %zu, \"records_scanned\": %zu, "
                "\"live_records\": %zu, \"pool_names\": %zu, "
                "\"violations\": %s, \"error\": \"%s\"}\n",
                jsonEscape(Dir).c_str(), Rep.Ok ? "true" : "false",
                Empty ? "true" : "false", Rep.clean() ? "true" : "false",
                static_cast<unsigned long long>(Rep.Generation),
                Rep.SegmentsScanned, Rep.RecordsScanned, Rep.LiveRecords,
                Rep.PoolNames, Viols.c_str(), jsonEscape(Rep.Error).c_str());
    return Rep.clean() ? 0 : 1;
  }
  std::printf("store: %s\n", Dir.c_str());
  if (!Rep.Ok) {
    std::printf("verify: cannot scan: %s\n", Rep.Error.c_str());
    for (const StoreFsckViolation &V : Rep.Violations)
      std::printf("%s:%llu: %s\n", V.File.c_str(),
                  static_cast<unsigned long long>(V.Offset),
                  V.Message.c_str());
    return 1;
  }
  if (Empty) {
    std::printf("verify: empty store (not yet initialized): clean\n");
    return 0;
  }
  for (const StoreFsckViolation &V : Rep.Violations) {
    if (V.HasKey)
      std::printf("%s:%llu: key %016llx%016llx: %s\n", V.File.c_str(),
                  static_cast<unsigned long long>(V.Offset),
                  static_cast<unsigned long long>(V.Key.Hi),
                  static_cast<unsigned long long>(V.Key.Lo),
                  V.Message.c_str());
    else
      std::printf("%s:%llu: %s\n", V.File.c_str(),
                  static_cast<unsigned long long>(V.Offset),
                  V.Message.c_str());
  }
  std::printf("verify: generation %llu, %zu segments, %zu records "
              "(%zu live), %zu pool names: %s\n",
              static_cast<unsigned long long>(Rep.Generation),
              Rep.SegmentsScanned, Rep.RecordsScanned, Rep.LiveRecords,
              Rep.PoolNames,
              Rep.Violations.empty()
                  ? "clean"
                  : (std::to_string(Rep.Violations.size()) + " violations")
                        .c_str());
  return Rep.clean() ? 0 : 1;
}

int cmdCache(int argc, char **argv, int Start) {
  const std::vector<std::string> Actions = {"inspect", "prune", "compact",
                                            "verify"};
  if (Start >= argc) {
    std::fprintf(stderr,
                 "error: 'cache' expects an action: inspect, prune, "
                 "compact, verify\n");
    return usage();
  }
  std::string Action = argv[Start];
  if (Action != "inspect" && Action != "prune" && Action != "compact" &&
      Action != "verify") {
    std::string Hint = suggestFor(Action, Actions);
    if (!Hint.empty())
      std::fprintf(stderr,
                   "error: unknown cache action '%s' — did you mean '%s'?\n",
                   Action.c_str(), Hint.c_str());
    else
      std::fprintf(stderr, "error: unknown cache action '%s'\n",
                   Action.c_str());
    return 2;
  }

  std::string File, Format = "text";
  size_t MaxBytes = 0;
  bool HaveMaxBytes = false;
  const std::vector<std::string> kCacheFlags = {"--max-bytes", "--format="};
  auto ParseMaxBytes = [&](const char *Text) {
    errno = 0;
    char *End = nullptr;
    unsigned long long V = std::strtoull(Text, &End, 10);
    if (End == Text || *End != '\0' || Text[0] == '-' || errno == ERANGE) {
      std::fprintf(stderr,
                   "error: --max-bytes expects a non-negative number, "
                   "got '%s'\n",
                   Text);
      return false;
    }
    MaxBytes = static_cast<size_t>(V);
    HaveMaxBytes = true;
    return true;
  };
  for (int I = Start + 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--max-bytes" && I + 1 >= argc) {
      std::fprintf(stderr, "error: option '--max-bytes' requires a value\n");
      return 2;
    }
    if (Arg == "--max-bytes") {
      if (!ParseMaxBytes(argv[++I]))
        return 2;
    } else if (Arg.rfind("--max-bytes=", 0) == 0) {
      if (!ParseMaxBytes(Arg.c_str() + 12))
        return 2;
    } else if (Arg.rfind("--format=", 0) == 0) {
      Format = Arg.substr(9);
      if (Format != "text" && Format != "json") {
        std::fprintf(stderr, "error: --format expects text or json, got '%s'\n",
                     Format.c_str());
        return 2;
      }
    } else if (!Arg.empty() && Arg[0] == '-')
      return unknownOption("cache", Arg, kCacheFlags);
    else if (File.empty())
      File = Arg;
    else {
      std::fprintf(stderr, "error: 'cache %s' expects one file, got '%s'\n",
                   Action.c_str(), Arg.c_str());
      return usage();
    }
  }
  if (File.empty()) {
    std::fprintf(stderr, "error: 'cache %s' expects a cache file or store\n",
                 Action.c_str());
    return usage();
  }

  // Directories are artifact stores; plain paths are legacy cache files.
  if (Store::looksLikeStoreDir(File)) {
    if (Action == "inspect")
      return storeInspect(File, Format);
    if (Action == "compact")
      return storeCompact(File, Format);
    if (Action == "verify")
      return storeVerify(File, Format);
    if (!HaveMaxBytes) {
      std::fprintf(stderr, "error: 'cache prune' requires --max-bytes N\n");
      return usage();
    }
    return storePrune(File, MaxBytes, Format);
  }
  if (Action == "compact" || Action == "verify") {
    std::fprintf(stderr,
                 "error: 'cache %s' expects an artifact store directory\n",
                 Action.c_str());
    return 2;
  }

  if (Action == "inspect") {
    CacheFileInfo Info = SummaryCache::inspectFile(File);
    if (Format == "json") {
      std::string ShardJson = "[";
      for (size_t I = 0; I < Info.ShardEntryCounts.size(); ++I) {
        if (I)
          ShardJson += ", ";
        ShardJson += std::to_string(Info.ShardEntryCounts[I]);
      }
      ShardJson += "]";
      std::printf("{\"file\": \"%s\", \"ok\": %s, \"stale\": %s, "
                  "\"newer_than_binary\": %s, "
                  "\"file_version\": %u, \"schema_version\": %u, "
                  "\"codec_version\": %u, \"entries\": %zu, "
                  "\"payload_bytes\": %zu, \"shard_entries\": %s, "
                  "\"error\": \"%s\"}\n",
                  jsonEscape(File).c_str(), Info.Ok ? "true" : "false",
                  Info.Stale ? "true" : "false",
                  Info.Newer ? "true" : "false", Info.FileVersion,
                  Info.SchemaVersion, kSchemePayloadVersion, Info.EntryCount,
                  Info.PayloadBytes, ShardJson.c_str(),
                  jsonEscape(Info.Error).c_str());
    } else {
      std::printf("file: %s\n", File.c_str());
      if (Info.Ok) {
        std::printf("header: ok (v%u schema %u)\n", Info.FileVersion,
                    Info.SchemaVersion);
        std::printf("codec: binary scheme payload v%u\n",
                    kSchemePayloadVersion);
        std::printf("entries: %zu\npayload bytes: %zu\n", Info.EntryCount,
                    Info.PayloadBytes);
        std::printf("shard entries:");
        for (size_t I = 0; I < Info.ShardEntryCounts.size(); ++I)
          std::printf(" %zu:%zu", I, Info.ShardEntryCounts[I]);
        std::printf("\n");
      } else {
        std::printf("header: %s\n", Info.Error.c_str());
      }
    }
    return Info.Ok ? 0 : 1;
  }

  // prune
  if (!HaveMaxBytes) {
    std::fprintf(stderr, "error: 'cache prune' requires --max-bytes N\n");
    return usage();
  }
  SummaryCache Cache;
  if (!Cache.load(File)) {
    // Distinguish version mismatches (with direction-aware advice) from
    // genuinely unreadable files.
    CacheFileInfo Info = SummaryCache::inspectFile(File);
    if (Info.Stale || Info.Newer)
      std::fprintf(stderr, "error: cannot load %s: %s\n", File.c_str(),
                   Info.Error.c_str());
    else
      std::fprintf(stderr,
                   "error: cannot load %s (missing or unrecognized file)\n",
                   File.c_str());
    return 1;
  }
  size_t Before = Cache.size();
  size_t Dropped = Cache.pruneToBytes(MaxBytes);
  if (!Cache.save(File)) {
    std::fprintf(stderr, "error: cannot write %s\n", File.c_str());
    return 1;
  }
  if (Format == "json")
    std::printf("{\"file\": \"%s\", \"pruned\": %zu, \"before\": %zu, "
                "\"remaining\": %zu, \"payload_bytes\": %zu}\n",
                jsonEscape(File).c_str(), Dropped, Before, Cache.size(),
                Cache.payloadBytes());
  else
    std::printf("pruned %zu of %zu entries; %zu remain (%zu payload bytes)\n",
                Dropped, Before, Cache.size(), Cache.payloadBytes());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  std::string First = argv[1];
  const std::vector<std::string> Commands = {"analyze", "reanalyze", "cache",
                                             "help"};

  if (First == "help") {
    usage(stdout);
    return 0;
  }
  if (First == "analyze")
    return cmdAnalyze(argc, argv, 2, "analyze");
  if (First == "reanalyze")
    return cmdReanalyze(argc, argv, 2);
  if (First == "cache")
    return cmdCache(argc, argv, 2);

  // A near-miss of a command name is more likely a typo than a legacy
  // no-subcommand invocation; everything else falls through to the legacy
  // `analyze` spelling (flags and one path, in any order).
  if (!First.empty() && First[0] != '-') {
    std::string Hint = suggestFor(First, Commands);
    bool LooksLikePath = First.find('.') != std::string::npos ||
                         First.find('/') != std::string::npos;
    if (!Hint.empty() && !LooksLikePath) {
      std::fprintf(stderr,
                   "error: unknown command '%s' — did you mean '%s'?\n",
                   First.c_str(), Hint.c_str());
      return 2;
    }
  }
  return cmdAnalyze(argc, argv, 1, "analyze");
}
