//===- retypd-cli.cpp - Command-line driver -----------------------------------===//
//
// The command-line face of the library:
//
//   retypd-cli prog.asm                  infer and print a C header
//   retypd-cli --schemes prog.asm        also print per-function type schemes
//   retypd-cli --sketches prog.asm       also print solved sketches
//   retypd-cli --strip prog.asm          round-trip through the stripped
//                                        binary encoder/disassembler first
//   retypd-cli --engine=unify prog.asm   use the unification baseline
//   retypd-cli --engine=interval prog.asm  use the TIE-style baseline
//   retypd-cli --jobs N prog.asm         solve SCC waves on N threads
//                                        (0 = one per hardware thread);
//                                        output is byte-identical for
//                                        every N
//   retypd-cli --summary-cache F prog.asm  load/save the content-addressed
//                                        scheme cache at F; repeated runs
//                                        skip simplification entirely
//   retypd-cli --stats prog.asm          append per-phase timing and cache
//                                        counters as a trailing comment
//
// Input is the textual assembly of mir/AsmParser.h (see examples/data/).
//
//===----------------------------------------------------------------------===//

#include "baseline/Baselines.h"
#include "frontend/Pipeline.h"
#include "frontend/ReportPrinter.h"
#include "loader/BinaryImage.h"
#include "mir/AsmParser.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace retypd;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--schemes] [--sketches] [--strip] [--stats] "
               "[--jobs N] [--summary-cache FILE] "
               "[--engine=retypd|unify|interval] prog.asm\n",
               Argv0);
  return 2;
}

/// Parses a --jobs value: a plain decimal in [0, 1024] (0 = one thread
/// per hardware core). Rejects signs, trailing junk, and overflow.
bool parseJobs(const char *Text, unsigned &Jobs) {
  errno = 0;
  char *End = nullptr;
  unsigned long V = std::strtoul(Text, &End, 10);
  if (End == Text || *End != '\0' || Text[0] == '-' || Text[0] == '+' ||
      errno == ERANGE || V > 1024) {
    std::fprintf(stderr,
                 "error: --jobs expects a number in [0, 1024], got '%s'\n",
                 Text);
    return false;
  }
  Jobs = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Schemes = false, Sketches = false, Strip = false, Stats = false;
  unsigned Jobs = 1;
  std::string Engine = "retypd";
  std::string Path, CachePath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--schemes")
      Schemes = true;
    else if (Arg == "--sketches")
      Sketches = true;
    else if (Arg == "--strip")
      Strip = true;
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--jobs" && I + 1 < argc) {
      if (!parseJobs(argv[++I], Jobs))
        return usage(argv[0]);
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseJobs(Arg.c_str() + 7, Jobs))
        return usage(argv[0]);
    }
    else if (Arg == "--summary-cache" && I + 1 < argc)
      CachePath = argv[++I];
    else if (Arg.rfind("--summary-cache=", 0) == 0)
      CachePath = Arg.substr(16);
    else if (Arg.rfind("--engine=", 0) == 0)
      Engine = Arg.substr(9);
    else if (!Arg.empty() && Arg[0] == '-')
      return usage(argv[0]);
    else
      Path = Arg;
  }
  if (Path.empty())
    return usage(argv[0]);

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  AsmParser Parser;
  auto M = Parser.parse(Buf.str());
  if (!M) {
    std::fprintf(stderr, "%s: parse error: %s\n", Path.c_str(),
                 Parser.error().c_str());
    return 1;
  }
  if (auto Main = M->findFunction("main"))
    M->EntryFunc = *Main;

  if (Strip) {
    EncodedImage Img = encodeModule(*M);
    DecodeReport Rep;
    auto Recovered = decodeImage(Img.Bytes, Rep);
    if (!Recovered) {
      std::fprintf(stderr, "decode error: %s\n", Rep.Error.c_str());
      return 1;
    }
    std::printf("/* stripped round trip: %u functions rediscovered, "
                "%u imports, %u damaged instructions */\n",
                Rep.FunctionsDiscovered, Rep.ImportsResolved,
                Rep.BadInstructions);
    *M = std::move(*Recovered);
  }

  Lattice Lat = makeDefaultLattice();

  if (Engine == "unify" || Engine == "interval") {
    BaselineResult R;
    if (Engine == "unify") {
      UnificationInference U(Lat);
      R = U.run(*M);
    } else {
      IntervalInference T(Lat);
      R = T.run(*M);
    }
    for (const auto &[F, BF] : R.Funcs) {
      std::string Params;
      for (size_t K = 0; K < BF.Params.size(); ++K) {
        if (K)
          Params += ", ";
        Params += R.Pool.declare(BF.Params[K].Type, "");
      }
      std::printf("%s %s(%s);\n",
                  BF.HasRet ? R.Pool.declare(BF.Ret.Type, "").c_str()
                            : "void",
                  M->Funcs[F].Name.c_str(),
                  Params.empty() ? "void" : Params.c_str());
    }
    return 0;
  }
  if (Engine != "retypd")
    return usage(argv[0]);

  SummaryCache Cache;
  if (!CachePath.empty())
    Cache.load(CachePath); // a missing file is just a cold cache

  PipelineOptions PipeOpts;
  PipeOpts.Jobs = Jobs;
  if (!CachePath.empty())
    PipeOpts.Cache = &Cache;

  Pipeline Pipe(Lat, PipeOpts);
  TypeReport R = Pipe.run(*M);

  if (!CachePath.empty() && !Cache.save(CachePath))
    std::fprintf(stderr, "warning: cannot write summary cache %s\n",
                 CachePath.c_str());

  ReportPrintOptions PrintOpts;
  PrintOpts.Schemes = Schemes;
  PrintOpts.Sketches = Sketches;
  std::string Text = renderReport(R, *M, Lat, PrintOpts);
  std::fwrite(Text.data(), 1, Text.size(), stdout);

  if (Stats) {
    const PipelineStats &S = R.Stats;
    std::printf("/* stats: jobs=%u sccs=%zu waves=%zu widest=%zu "
                "gen=%.3fs simplify=%.3fs solve=%.3fs convert=%.3fs "
                "cache_hits=%llu cache_misses=%llu */\n",
                S.JobsUsed, S.SccCount, S.WaveCount, S.WidestWave,
                S.GenerateSecs, S.SimplifySecs, S.SolveSecs, S.ConvertSecs,
                static_cast<unsigned long long>(S.CacheHits),
                static_cast<unsigned long long>(S.CacheMisses));
  }
  return 0;
}
