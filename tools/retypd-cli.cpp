//===- retypd-cli.cpp - Command-line driver -----------------------------------===//
//
// The command-line face of the library:
//
//   retypd-cli prog.asm                  infer and print a C header
//   retypd-cli --schemes prog.asm        also print per-function type schemes
//   retypd-cli --sketches prog.asm       also print solved sketches
//   retypd-cli --strip prog.asm          round-trip through the stripped
//                                        binary encoder/disassembler first
//   retypd-cli --engine=unify prog.asm   use the unification baseline
//   retypd-cli --engine=interval prog.asm  use the TIE-style baseline
//
// Input is the textual assembly of mir/AsmParser.h (see examples/data/).
//
//===----------------------------------------------------------------------===//

#include "baseline/Baselines.h"
#include "frontend/Pipeline.h"
#include "loader/BinaryImage.h"
#include "mir/AsmParser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace retypd;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--schemes] [--sketches] [--strip] "
               "[--engine=retypd|unify|interval] prog.asm\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  bool Schemes = false, Sketches = false, Strip = false;
  std::string Engine = "retypd";
  std::string Path;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--schemes")
      Schemes = true;
    else if (Arg == "--sketches")
      Sketches = true;
    else if (Arg == "--strip")
      Strip = true;
    else if (Arg.rfind("--engine=", 0) == 0)
      Engine = Arg.substr(9);
    else if (!Arg.empty() && Arg[0] == '-')
      return usage(argv[0]);
    else
      Path = Arg;
  }
  if (Path.empty())
    return usage(argv[0]);

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  AsmParser Parser;
  auto M = Parser.parse(Buf.str());
  if (!M) {
    std::fprintf(stderr, "%s: parse error: %s\n", Path.c_str(),
                 Parser.error().c_str());
    return 1;
  }
  if (auto Main = M->findFunction("main"))
    M->EntryFunc = *Main;

  if (Strip) {
    EncodedImage Img = encodeModule(*M);
    DecodeReport Rep;
    auto Recovered = decodeImage(Img.Bytes, Rep);
    if (!Recovered) {
      std::fprintf(stderr, "decode error: %s\n", Rep.Error.c_str());
      return 1;
    }
    std::printf("/* stripped round trip: %u functions rediscovered, "
                "%u imports, %u damaged instructions */\n",
                Rep.FunctionsDiscovered, Rep.ImportsResolved,
                Rep.BadInstructions);
    *M = std::move(*Recovered);
  }

  Lattice Lat = makeDefaultLattice();

  if (Engine == "unify" || Engine == "interval") {
    BaselineResult R;
    if (Engine == "unify") {
      UnificationInference U(Lat);
      R = U.run(*M);
    } else {
      IntervalInference T(Lat);
      R = T.run(*M);
    }
    for (const auto &[F, BF] : R.Funcs) {
      std::string Params;
      for (size_t K = 0; K < BF.Params.size(); ++K) {
        if (K)
          Params += ", ";
        Params += R.Pool.declare(BF.Params[K].Type, "");
      }
      std::printf("%s %s(%s);\n",
                  BF.HasRet ? R.Pool.declare(BF.Ret.Type, "").c_str()
                            : "void",
                  M->Funcs[F].Name.c_str(),
                  Params.empty() ? "void" : Params.c_str());
    }
    return 0;
  }
  if (Engine != "retypd")
    return usage(argv[0]);

  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(*M);

  std::vector<CTypeId> Roots;
  for (const auto &[F, T] : R.Funcs)
    if (T.CType != NoCType)
      Roots.push_back(T.CType);
  std::string Defs = R.Pool.structDefinitions(Roots);
  if (!Defs.empty())
    std::printf("%s\n", Defs.c_str());

  for (const auto &[F, T] : R.Funcs) {
    if (M->Funcs[F].IsExternal)
      continue;
    std::printf("%s;\n", R.prototypeOf(F, *M).c_str());
    if (Schemes)
      std::printf("/* scheme:\n%s\n*/\n",
                  T.Scheme.str(*R.Syms, Lat).c_str());
    if (Sketches)
      std::printf("/* sketch:\n%s*/\n", T.FuncSketch.str(Lat, 4).c_str());
  }
  return 0;
}
